package rpc

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"cogrid/internal/transport"
)

// TestCodecInterop runs the echo service across every client/server codec
// pairing: the receive side auto-detects per frame, so a JSON peer and a
// binary peer must interoperate transparently — calls, errors, and
// notifications in both directions.
func TestCodecInterop(t *testing.T) {
	codecName := map[Codec]string{Binary: "binary", JSON: "json"}
	for _, clientCodec := range []Codec{Binary, JSON} {
		for _, serverCodec := range []Codec{Binary, JSON} {
			name := fmt.Sprintf("client=%s/server=%s", codecName[clientCodec], codecName[serverCodec])
			t.Run(name, func(t *testing.T) {
				sim, a, b := newPair(t)
				l, err := b.Listen("echo")
				if err != nil {
					t.Fatalf("Listen: %v", err)
				}
				h := HandlerFuncs{
					Call: func(sc *ServerConn, method string, body json.RawMessage) (any, error) {
						var args echoArgs
						if err := Decode(body, &args); err != nil {
							return nil, err
						}
						if method == "boom" {
							return nil, fmt.Errorf("kaboom")
						}
						return echoReply{Text: args.Text}, nil
					},
					NotifyFunc: func(sc *ServerConn, method string, body json.RawMessage) {
						sc.Notify("poked", echoReply{Text: "back"})
					},
				}
				ServeCodec(sim, l, h, nil, serverCodec)
				err = sim.Run("client", func() {
					conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
					if err != nil {
						t.Errorf("Dial: %v", err)
						return
					}
					c := NewClientCodec(sim, conn, clientCodec)
					defer c.Close()
					var reply echoReply
					if err := c.Call("echo", echoArgs{Text: "hello"}, &reply, time.Minute); err != nil {
						t.Errorf("Call: %v", err)
						return
					}
					if reply.Text != "hello" {
						t.Errorf("reply = %q, want hello", reply.Text)
					}
					if err := c.Call("boom", echoArgs{}, nil, time.Minute); err == nil || err.Error() != "kaboom" {
						t.Errorf("boom = %v, want remote kaboom", err)
					}
					if err := c.Notify("poke", nil); err != nil {
						t.Errorf("Notify: %v", err)
					}
					n, ok := c.Notifications().Recv()
					if !ok || n.Method != "poked" {
						t.Errorf("notification = %+v (ok=%t), want poked", n, ok)
					}
					var back echoReply
					if err := n.Decode(&back); err != nil || back.Text != "back" {
						t.Errorf("notification body = %+v, %v; want back", back, err)
					}
				})
				if err != nil {
					t.Fatalf("sim: %v", err)
				}
			})
		}
	}
}
