package rpc

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

type echoArgs struct {
	Text  string `json:"text"`
	Delay int    `json:"delay_ms"`
}

type echoReply struct {
	Text string `json:"text"`
}

// startEcho serves an "echo" method on host b with an optional simulated
// service time, plus a "boom" method that always errors and a "poke"
// notification that triggers a server->client notification.
func startEcho(t *testing.T, sim *vtime.Sim, host *transport.Host) *Server {
	t.Helper()
	l, err := host.Listen("echo")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	h := HandlerFuncs{
		Call: func(sc *ServerConn, method string, body json.RawMessage) (any, error) {
			switch method {
			case "echo":
				var args echoArgs
				if err := Decode(body, &args); err != nil {
					return nil, err
				}
				if args.Delay > 0 {
					sim.Sleep(time.Duration(args.Delay) * time.Millisecond)
				}
				return echoReply{Text: args.Text}, nil
			case "boom":
				return nil, fmt.Errorf("kaboom")
			}
			return nil, fmt.Errorf("unknown method %s", method)
		},
		NotifyFunc: func(sc *ServerConn, method string, body json.RawMessage) {
			if method == "poke" {
				sc.Notify("poked", echoReply{Text: "back"})
			}
		},
	}
	return Serve(sim, l, h, nil)
}

func newPair(t *testing.T) (*vtime.Sim, *transport.Host, *transport.Host) {
	t.Helper()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	return sim, net.AddHost("a"), net.AddHost("b")
}

func TestCallRoundTrip(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		var reply echoReply
		start := sim.Now()
		if err := c.Call("echo", echoArgs{Text: "hi"}, &reply, time.Minute); err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		if reply.Text != "hi" {
			t.Errorf("reply = %q, want hi", reply.Text)
		}
		if rtt := sim.Now() - start; rtt != 2*time.Millisecond {
			t.Errorf("call RTT = %v, want 2ms", rtt)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCallServiceTimeIncluded(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		start := sim.Now()
		var reply echoReply
		if err := c.Call("echo", echoArgs{Text: "x", Delay: 500}, &reply, time.Minute); err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		if took := sim.Now() - start; took != 502*time.Millisecond {
			t.Errorf("call took %v, want 502ms (2ms RTT + 500ms service)", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCallRemoteError(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		err = c.Call("boom", nil, nil, time.Minute)
		re, ok := err.(RemoteError)
		if !ok || re.Error() != "kaboom" {
			t.Errorf("Call err = %v, want RemoteError kaboom", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCallTimeout(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		start := sim.Now()
		err = c.Call("echo", echoArgs{Text: "slow", Delay: 10000}, nil, time.Second)
		if err != ErrTimeout {
			t.Errorf("Call = %v, want ErrTimeout", err)
		}
		if took := sim.Now() - start; took != time.Second {
			t.Errorf("timed out after %v, want 1s", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestServerCrashFailsPendingCall(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		sim.AfterFunc(100*time.Millisecond, func() { b.Crash() })
		err = c.Call("echo", echoArgs{Text: "x", Delay: 10000}, nil, time.Hour)
		if err != ErrClosed {
			t.Errorf("Call during crash = %v, want ErrClosed", err)
		}
		if sim.Now() >= time.Hour {
			t.Error("crash was not detected before the timeout")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestNotificationsBothDirections(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		if err := c.Notify("poke", nil); err != nil {
			t.Errorf("Notify: %v", err)
		}
		n, res := c.Notifications().RecvTimeout(time.Second)
		if res != vtime.RecvOK {
			t.Errorf("notification result = %v", res)
			return
		}
		if n.Method != "poked" {
			t.Errorf("notification method = %q, want poked", n.Method)
		}
		var reply echoReply
		if err := n.Decode(&reply); err != nil || reply.Text != "back" {
			t.Errorf("notification body = %+v, %v", reply, err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestPreambleRejectsConnection(t *testing.T) {
	sim, a, b := newPair(t)
	l, err := b.Listen("guarded")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	Serve(sim, l, HandlerFuncs{}, func(conn *transport.Conn) (any, error) {
		return nil, fmt.Errorf("denied")
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "guarded"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		err = c.Call("anything", nil, nil, time.Minute)
		if err != ErrClosed {
			t.Errorf("Call on rejected conn = %v, want ErrClosed", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestConcurrentCallsOverSeparateConnections(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	wg := vtime.NewWaitGroup(sim)
	const n = 8
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		sim.Go("caller", func() {
			defer wg.Done()
			conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			c := NewClient(sim, conn)
			defer c.Close()
			var reply echoReply
			msg := fmt.Sprintf("m%d", i)
			if err := c.Call("echo", echoArgs{Text: msg, Delay: 100}, &reply, time.Minute); err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			if reply.Text != msg {
				t.Errorf("reply %q, want %q", reply.Text, msg)
			}
		})
	}
	var end time.Duration
	sim.Go("main", func() {
		wg.Wait()
		end = sim.Now()
	})
	if err := sim.Wait(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	// All calls run in parallel on separate connections: total time is one
	// dial (2ms) plus one call (102ms), not n of them.
	if end != 104*time.Millisecond {
		t.Fatalf("8 parallel calls finished at %v, want 104ms", end)
	}
}

func TestCallsOnOneConnectionSerialize(t *testing.T) {
	// HandleCall runs synchronously in the per-connection loop, so two
	// calls pipelined on one connection serialize their service times —
	// the behaviour GRAM's gatekeeper exhibits per connection.
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		wg := vtime.NewWaitGroup(sim)
		wg.Add(2)
		start := sim.Now()
		for i := 0; i < 2; i++ {
			sim.Go("call", func() {
				defer wg.Done()
				if err := c.Call("echo", echoArgs{Text: "x", Delay: 200}, nil, time.Minute); err != nil {
					t.Errorf("Call: %v", err)
				}
			})
		}
		wg.Wait()
		if took := sim.Now() - start; took != 402*time.Millisecond {
			t.Errorf("two pipelined calls took %v, want 402ms", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
