// Package rpc provides a small request/reply and notification protocol
// over simulated transport connections.
//
// A connection carries envelopes in either the compact binary frame format
// of internal/wire (the default) or the legacy JSON format; receivers
// auto-detect per frame, so mixed-codec peers interoperate. Calls expect a
// matching reply; notifications are one-way and may flow in either
// direction, which is how GRAM delivers asynchronous job-state callbacks
// to a connected client.
package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cogrid/internal/metrics"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
	"cogrid/internal/wire"
)

// Errors returned by RPC operations.
var (
	ErrTimeout = errors.New("rpc: call timed out")
	ErrClosed  = errors.New("rpc: connection closed")
)

// RemoteError is an application-level error string returned by the remote
// handler.
type RemoteError string

func (e RemoteError) Error() string { return string(e) }

// Codec selects the envelope encoding for one side's sends. The receive
// side always auto-detects by first byte, so the two ends of a connection
// may use different codecs.
type Codec int

const (
	// Binary is the compact CRC-framed format of internal/wire (default).
	Binary Codec = iota
	// JSON is the legacy text envelope, kept for the codec comparison and
	// for wire-level debuggability.
	JSON
)

// envCtx returns an envelope's causal span context.
func envCtx(env *wire.Envelope) trace.Ctx { return trace.Ctx{Req: env.Req, Span: env.Span} }

// Notification is an incoming one-way message.
type Notification struct {
	Method string
	Body   json.RawMessage
	// Ctx is the sender's causal span context, when the notification was
	// sent with NotifyCtx.
	Ctx trace.Ctx
}

// Decode unmarshals the notification body into v.
func (n Notification) Decode(v any) error {
	if len(n.Body) == 0 {
		return nil
	}
	return json.Unmarshal(n.Body, v)
}

// Client issues calls and notifications over a connection and surfaces
// remote-initiated notifications. Create with NewClient; a demux daemon
// owns the receive side of the connection.
type Client struct {
	sim   *vtime.Sim
	conn  *transport.Conn
	codec Codec

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*vtime.Chan[wire.Envelope]
	closed  bool
	// enc is this direction's frame encoder; guarded by mu so the
	// handshake prologue rides the first frame actually sent.
	enc wire.Encoder
	dec wire.Decoder

	// hCall receives every call's virtual round-trip latency (all
	// outcomes, so timeouts shape the tail). Nil without a registry.
	hCall *metrics.Histogram

	notifications *vtime.Chan[Notification]
}

// NewClient wraps conn with the default binary codec. The caller must not
// use conn directly afterwards.
func NewClient(sim *vtime.Sim, conn *transport.Conn) *Client {
	return NewClientCodec(sim, conn, Binary)
}

// NewClientCodec is NewClient with an explicit send codec.
func NewClientCodec(sim *vtime.Sim, conn *transport.Conn, codec Codec) *Client {
	c := &Client{
		sim:           sim,
		conn:          conn,
		codec:         codec,
		pending:       make(map[uint64]*vtime.Chan[wire.Envelope]),
		hCall:         conn.Network().Hists().H("rpc.call.latency"),
		notifications: vtime.NewChan[Notification](sim, "rpc-notify:"+conn.LocalAddr().String(), 256),
	}
	if codec == Binary {
		sendPrologue(&c.enc, conn)
	}
	sim.GoDaemon("rpc-demux:"+conn.LocalAddr().String(), c.demux)
	return c
}

// sendPrologue ships the binary handshake prologue as its own frame at
// connection setup. Setup is a deterministic point; piggybacking the
// prologue on the first data frame instead would let goroutine scheduling
// within one virtual instant decide which message grows by its bytes,
// making per-message wire sizes nondeterministic.
func sendPrologue(enc *wire.Encoder, conn *transport.Conn) {
	buf := wire.GetBuf()
	frame := enc.EncodePrologue((*buf)[:0])
	_ = conn.SendCtx(frame, trace.Ctx{})
	*buf = frame
	wire.PutBuf(buf)
}

// Notifications returns the stream of remote-initiated notifications. The
// channel closes when the connection closes.
func (c *Client) Notifications() *vtime.Chan[Notification] { return c.notifications }

// Conn returns the underlying connection's remote address.
func (c *Client) RemoteAddr() transport.Addr { return c.conn.RemoteAddr() }

// corrID builds the correlation identifier shared by the client call span,
// the server handler span, and any dropped-reply event for one call: the
// connection-pair flow plus the per-connection call id.
func corrID(conn *transport.Conn, id uint64) string {
	return conn.Flow() + "#" + strconv.FormatUint(id, 10)
}

func (c *Client) demux() {
	for {
		raw, err := c.conn.Recv()
		if err != nil {
			c.shutdown()
			return
		}
		var env wire.Envelope
		if c.dec.Decode(raw, &env) != nil {
			// Malformed frame (truncated, corrupted, bad CRC): drop, but
			// count the drop so codec trouble is visible.
			c.conn.Network().Counters().Add(trace.Key("rpc", "frame", "decode-error", c.conn.LocalAddr().Host), 1)
			continue
		}
		switch env.Kind {
		case wire.KindReply:
			c.mu.Lock()
			ch := c.pending[env.ID]
			delete(c.pending, env.ID)
			c.mu.Unlock()
			if ch != nil {
				ch.TrySend(env)
			} else {
				// Late reply to a call that already timed out: the pending
				// entry is gone (Call removed it), so the reply is dropped —
				// but it still appears in the trace, correlated with the
				// timed-out call by ID.
				host := c.conn.LocalAddr().Host
				c.conn.Network().Tracer().InstantCtx(envCtx(&env), "rpc", "dropped-reply", host, c.conn.Flow(), corrID(c.conn, env.ID))
				c.conn.Network().Counters().Add(trace.Key("rpc", "reply", "drop", host), 1)
			}
		case wire.KindNotify:
			c.notifications.TrySend(Notification{Method: env.Method, Body: env.Body, Ctx: envCtx(&env)})
			host := c.conn.LocalAddr().Host
			c.conn.Network().Tracer().InstantCtx(envCtx(&env), "rpc", "notify:"+env.Method, host, c.conn.Flow(), "")
			c.conn.Network().Counters().Add(trace.Key("rpc", "notify", "recv", host), 1)
		}
	}
}

func (c *Client) shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint64]*vtime.Chan[wire.Envelope])
	c.mu.Unlock()
	for _, ch := range pending {
		ch.Close()
	}
	c.notifications.Close()
}

// Close tears down the connection. Pending calls fail with ErrClosed.
func (c *Client) Close() {
	c.conn.Close()
	c.shutdown()
}

// Call sends a request and waits up to timeout for the reply, decoding it
// into reply (which may be nil). Remote handler errors come back as
// RemoteError. The call joins the connection's base causal context; use
// CallCtx to parent it elsewhere.
func (c *Client) Call(method string, arg, reply any, timeout time.Duration) error {
	return c.CallCtx(trace.Ctx{}, method, arg, reply, timeout)
}

// CallCtx is Call under an explicit causal span context: the call span
// becomes a child of ctx, and the context rides the envelope so the server
// handler span (and everything below it) lands in the same request tree.
// A zero ctx falls back to the connection's base context.
func (c *Client) CallCtx(ctx trace.Ctx, method string, arg, reply any, timeout time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := vtime.NewChan[wire.Envelope](c.sim, fmt.Sprintf("rpc-reply:%d", id), 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if !ctx.Valid() {
		ctx = c.conn.Ctx()
	}
	callCtx := ctx.Child("call:" + method + "#" + strconv.FormatUint(id, 10))
	tr := c.conn.Network().Tracer()
	host := c.conn.LocalAddr().Host
	start := tr.Now()
	startV := c.sim.Now()
	finish := func(outcome string) {
		c.hCall.Record(int64(c.sim.Now() - startV))
		tr.SpanCtx(callCtx, "rpc", "call:"+method, host, c.conn.Flow(), corrID(c.conn, id), start,
			trace.Arg{Key: "outcome", Val: outcome})
		c.conn.Network().Counters().Add(trace.Key("rpc", "call", outcome, host), 1)
	}

	if err := c.send(wire.Envelope{ID: id, Kind: wire.KindCall, Method: method, Req: callCtx.Req, Span: callCtx.Span}, arg); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		finish("closed")
		return err
	}
	env, res := ch.RecvTimeout(timeout)
	switch res {
	case vtime.RecvClosed:
		finish("closed")
		return ErrClosed
	case vtime.RecvTimedOut:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		finish("timeout")
		return ErrTimeout
	}
	if env.Error != "" {
		finish("error")
		return RemoteError(env.Error)
	}
	finish("ok")
	if reply != nil && len(env.Body) > 0 {
		return json.Unmarshal(env.Body, reply)
	}
	return nil
}

// Notify sends a one-way message under the connection's base context.
func (c *Client) Notify(method string, arg any) error {
	return c.NotifyCtx(trace.Ctx{}, method, arg)
}

// NotifyCtx sends a one-way message carrying the given causal context.
func (c *Client) NotifyCtx(ctx trace.Ctx, method string, arg any) error {
	if !ctx.Valid() {
		ctx = c.conn.Ctx()
	}
	return c.send(wire.Envelope{Kind: wire.KindNotify, Method: method, Req: ctx.Req, Span: ctx.Span}, arg)
}

func (c *Client) send(env wire.Envelope, arg any) error {
	if arg != nil {
		body, err := json.Marshal(arg)
		if err != nil {
			return fmt.Errorf("rpc: marshal %s: %w", env.Method, err)
		}
		env.Body = body
	}
	ctx := envCtx(&env)
	if c.codec == JSON {
		raw, err := wire.EncodeJSON(&env)
		if err != nil {
			return fmt.Errorf("rpc: marshal envelope: %w", err)
		}
		if err := c.conn.SendCtx(raw, ctx); err != nil {
			return ErrClosed
		}
		return nil
	}
	// Binary: encode into a pooled buffer under mu (callers share the
	// encoder); SendCtx copies the frame, so the buffer recycles
	// immediately. The prologue went out at setup (sendPrologue).
	buf := wire.GetBuf()
	c.mu.Lock()
	frame := c.enc.Encode((*buf)[:0], &env)
	err := c.conn.SendCtx(frame, ctx)
	c.mu.Unlock()
	*buf = frame
	wire.PutBuf(buf)
	if err != nil {
		return ErrClosed
	}
	return nil
}

// ServerConn is the server's view of one accepted connection. Handlers may
// use it to push notifications back to the client (e.g. GRAM state
// callbacks) and to close the connection.
type ServerConn struct {
	sim   *vtime.Sim
	conn  *transport.Conn
	codec Codec
	// mu guards enc: replies (serve loop) and notifications (handler
	// daemons) share this direction's encoder.
	mu  sync.Mutex
	enc wire.Encoder
	// Meta carries the preamble's result, e.g. the authenticated identity
	// established by a GSI handshake.
	Meta any
	// Ctx is the causal span context of the call currently being handled
	// (the caller's context extended with a "serve" segment). It is set by
	// the per-connection loop immediately before each HandleCall, which
	// runs synchronously in that loop, so handlers may read it to parent
	// their own spans. Outside a call it holds the connection's base
	// context.
	Ctx trace.Ctx
}

// RemoteAddr returns the client's address.
func (sc *ServerConn) RemoteAddr() transport.Addr { return sc.conn.RemoteAddr() }

// Notify pushes a one-way message to the client under the connection's
// base causal context.
func (sc *ServerConn) Notify(method string, arg any) error {
	return sc.NotifyCtx(trace.Ctx{}, method, arg)
}

// NotifyCtx pushes a one-way message carrying the given causal context
// (e.g. an asynchronous job-state callback parented to the submit that
// registered it).
func (sc *ServerConn) NotifyCtx(ctx trace.Ctx, method string, arg any) error {
	if !ctx.Valid() {
		ctx = sc.conn.Ctx()
	}
	env := wire.Envelope{Kind: wire.KindNotify, Method: method, Req: ctx.Req, Span: ctx.Span}
	if arg != nil {
		body, err := json.Marshal(arg)
		if err != nil {
			return fmt.Errorf("rpc: marshal %s: %w", method, err)
		}
		env.Body = body
	}
	if err := sc.sendEnv(&env, ctx); err != nil {
		return err
	}
	host := sc.conn.LocalAddr().Host
	sc.conn.Network().Tracer().InstantCtx(ctx, "rpc", "notify:"+method, host, sc.conn.Flow(), "")
	sc.conn.Network().Counters().Add(trace.Key("rpc", "notify", "send", host), 1)
	return nil
}

// sendEnv encodes env in the connection's codec and sends it under ctx.
func (sc *ServerConn) sendEnv(env *wire.Envelope, ctx trace.Ctx) error {
	if sc.codec == JSON {
		raw, err := wire.EncodeJSON(env)
		if err != nil {
			return err
		}
		if sc.conn.SendCtx(raw, ctx) != nil {
			return ErrClosed
		}
		return nil
	}
	buf := wire.GetBuf()
	sc.mu.Lock()
	frame := sc.enc.Encode((*buf)[:0], env)
	err := sc.conn.SendCtx(frame, ctx)
	sc.mu.Unlock()
	*buf = frame
	wire.PutBuf(buf)
	if err != nil {
		return ErrClosed
	}
	return nil
}

// Close closes the connection.
func (sc *ServerConn) Close() { sc.conn.Close() }

// Handler processes inbound calls and notifications. HandleCall runs
// synchronously in the per-connection loop: its execution time (e.g. a
// simulated initgroups lookup) delays only that connection.
type Handler interface {
	HandleCall(sc *ServerConn, method string, body json.RawMessage) (any, error)
	HandleNotify(sc *ServerConn, method string, body json.RawMessage)
}

// Preamble runs on each new server connection before any envelope is
// processed (e.g. the server side of a GSI handshake). Returning an error
// rejects the connection; the returned value is stored in ServerConn.Meta.
type Preamble func(conn *transport.Conn) (any, error)

// Server accepts connections on a listener and dispatches envelopes to a
// Handler.
type Server struct {
	sim      *vtime.Sim
	listener *transport.Listener
	handler  Handler
	preamble Preamble
	codec    Codec
}

// Serve starts accepting on l, running preamble (optional) then the
// envelope loop for each connection, replying in the default binary codec.
// It returns immediately; daemons do the work.
func Serve(sim *vtime.Sim, l *transport.Listener, handler Handler, preamble Preamble) *Server {
	return ServeCodec(sim, l, handler, preamble, Binary)
}

// ServeCodec is Serve with an explicit send codec for replies and
// notifications. Inbound frames are auto-detected regardless.
func ServeCodec(sim *vtime.Sim, l *transport.Listener, handler Handler, preamble Preamble, codec Codec) *Server {
	srv := &Server{sim: sim, listener: l, handler: handler, preamble: preamble, codec: codec}
	sim.GoDaemon("rpc-accept:"+l.Addr().String(), srv.acceptLoop)
	return srv
}

// Addr returns the served address.
func (s *Server) Addr() transport.Addr { return s.listener.Addr() }

// Close stops accepting new connections.
func (s *Server) Close() { s.listener.Close() }

func (s *Server) acceptLoop() {
	for {
		conn, ok := s.listener.Accept()
		if !ok {
			return
		}
		s.sim.GoDaemon("rpc-conn:"+conn.RemoteAddr().String(), func() {
			s.serveConn(conn)
		})
	}
}

func (s *Server) serveConn(conn *transport.Conn) {
	var meta any
	if s.preamble != nil {
		m, err := s.preamble(conn)
		if err != nil {
			conn.Close()
			return
		}
		meta = m
	}
	sc := &ServerConn{sim: s.sim, conn: conn, codec: s.codec, Meta: meta, Ctx: conn.Ctx()}
	if s.codec == Binary {
		sendPrologue(&sc.enc, conn)
	}
	tr := conn.Network().Tracer()
	host := conn.LocalAddr().Host
	hServe := conn.Network().Hists().H("rpc.serve.latency")
	var dec wire.Decoder
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		var env wire.Envelope
		if dec.Decode(raw, &env) != nil {
			conn.Network().Counters().Add(trace.Key("rpc", "frame", "decode-error", host), 1)
			continue
		}
		switch env.Kind {
		case wire.KindCall:
			// The serve span covers handler execution and shares the call's
			// correlation ID, so client and server sides of one RPC line up
			// in the trace. The envelope's span context parents the serve
			// span under the caller's call span.
			serveCtx := envCtx(&env)
			if !serveCtx.Valid() {
				serveCtx = conn.Ctx()
			}
			serveCtx = serveCtx.Child("serve")
			sc.Ctx = serveCtx
			serveStart := tr.Now()
			serveStartV := s.sim.Now()
			result, err := s.handler.HandleCall(sc, env.Method, env.Body)
			hServe.Record(int64(s.sim.Now() - serveStartV))
			sc.Ctx = conn.Ctx()
			reply := wire.Envelope{ID: env.ID, Kind: wire.KindReply, Req: serveCtx.Req, Span: serveCtx.Span}
			outcome := "ok"
			if err != nil {
				reply.Error = err.Error()
				outcome = "error"
			} else if result != nil {
				body, merr := json.Marshal(result)
				if merr != nil {
					reply.Error = "rpc: marshal reply: " + merr.Error()
					outcome = "error"
				} else {
					reply.Body = body
				}
			}
			tr.SpanCtx(serveCtx, "rpc", "serve:"+env.Method, host, conn.Flow(), corrID(conn, env.ID), serveStart,
				trace.Arg{Key: "outcome", Val: outcome})
			conn.Network().Counters().Add(trace.Key("rpc", "serve", outcome, host), 1)
			if sc.sendEnv(&reply, serveCtx) == ErrClosed {
				return
			}
		case wire.KindNotify:
			s.handler.HandleNotify(sc, env.Method, env.Body)
		}
	}
}

// HandlerFuncs adapts plain functions to the Handler interface. Nil fields
// reject calls with an error / ignore notifications.
type HandlerFuncs struct {
	Call       func(sc *ServerConn, method string, body json.RawMessage) (any, error)
	NotifyFunc func(sc *ServerConn, method string, body json.RawMessage)
}

// HandleCall implements Handler.
func (h HandlerFuncs) HandleCall(sc *ServerConn, method string, body json.RawMessage) (any, error) {
	if h.Call == nil {
		return nil, fmt.Errorf("rpc: no handler for %s", method)
	}
	return h.Call(sc, method, body)
}

// HandleNotify implements Handler.
func (h HandlerFuncs) HandleNotify(sc *ServerConn, method string, body json.RawMessage) {
	if h.NotifyFunc != nil {
		h.NotifyFunc(sc, method, body)
	}
}

// Decode unmarshals a call body into v, tolerating an empty body.
func Decode(body json.RawMessage, v any) error {
	if len(body) == 0 {
		return nil
	}
	return json.Unmarshal(body, v)
}
