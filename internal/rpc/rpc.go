// Package rpc provides a small request/reply and notification protocol
// over simulated transport connections.
//
// A connection carries JSON envelopes. Calls expect a matching reply;
// notifications are one-way and may flow in either direction, which is how
// GRAM delivers asynchronous job-state callbacks to a connected client.
package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cogrid/internal/metrics"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Errors returned by RPC operations.
var (
	ErrTimeout = errors.New("rpc: call timed out")
	ErrClosed  = errors.New("rpc: connection closed")
)

// RemoteError is an application-level error string returned by the remote
// handler.
type RemoteError string

func (e RemoteError) Error() string { return string(e) }

const (
	kindCall   = "call"
	kindReply  = "reply"
	kindNotify = "notify"
)

type envelope struct {
	ID     uint64 `json:"id,omitempty"`
	Kind   string `json:"kind"`
	Method string `json:"method,omitempty"`
	Error  string `json:"error,omitempty"`
	// Req/Span carry the causal span context across the wire, so the
	// server parents its handler span into the caller's request tree.
	Req  string          `json:"req,omitempty"`
	Span string          `json:"span,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// ctx returns the envelope's causal span context.
func (e envelope) ctx() trace.Ctx { return trace.Ctx{Req: e.Req, Span: e.Span} }

// Notification is an incoming one-way message.
type Notification struct {
	Method string
	Body   json.RawMessage
	// Ctx is the sender's causal span context, when the notification was
	// sent with NotifyCtx.
	Ctx trace.Ctx
}

// Decode unmarshals the notification body into v.
func (n Notification) Decode(v any) error {
	if len(n.Body) == 0 {
		return nil
	}
	return json.Unmarshal(n.Body, v)
}

// Client issues calls and notifications over a connection and surfaces
// remote-initiated notifications. Create with NewClient; a demux daemon
// owns the receive side of the connection.
type Client struct {
	sim  *vtime.Sim
	conn *transport.Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*vtime.Chan[envelope]
	closed  bool

	// hCall receives every call's virtual round-trip latency (all
	// outcomes, so timeouts shape the tail). Nil without a registry.
	hCall *metrics.Histogram

	notifications *vtime.Chan[Notification]
}

// NewClient wraps conn. The caller must not use conn directly afterwards.
func NewClient(sim *vtime.Sim, conn *transport.Conn) *Client {
	c := &Client{
		sim:           sim,
		conn:          conn,
		pending:       make(map[uint64]*vtime.Chan[envelope]),
		hCall:         conn.Network().Hists().H("rpc.call.latency"),
		notifications: vtime.NewChan[Notification](sim, "rpc-notify:"+conn.LocalAddr().String(), 256),
	}
	sim.GoDaemon("rpc-demux:"+conn.LocalAddr().String(), c.demux)
	return c
}

// Notifications returns the stream of remote-initiated notifications. The
// channel closes when the connection closes.
func (c *Client) Notifications() *vtime.Chan[Notification] { return c.notifications }

// Conn returns the underlying connection's remote address.
func (c *Client) RemoteAddr() transport.Addr { return c.conn.RemoteAddr() }

// corrID builds the correlation identifier shared by the client call span,
// the server handler span, and any dropped-reply event for one call: the
// connection-pair flow plus the per-connection call id.
func corrID(conn *transport.Conn, id uint64) string {
	return conn.Flow() + "#" + strconv.FormatUint(id, 10)
}

func (c *Client) demux() {
	for {
		raw, err := c.conn.Recv()
		if err != nil {
			c.shutdown()
			return
		}
		var env envelope
		if json.Unmarshal(raw, &env) != nil {
			continue // malformed frame: drop
		}
		switch env.Kind {
		case kindReply:
			c.mu.Lock()
			ch := c.pending[env.ID]
			delete(c.pending, env.ID)
			c.mu.Unlock()
			if ch != nil {
				ch.TrySend(env)
			} else {
				// Late reply to a call that already timed out: the pending
				// entry is gone (Call removed it), so the reply is dropped —
				// but it still appears in the trace, correlated with the
				// timed-out call by ID.
				host := c.conn.LocalAddr().Host
				c.conn.Network().Tracer().InstantCtx(env.ctx(), "rpc", "dropped-reply", host, c.conn.Flow(), corrID(c.conn, env.ID))
				c.conn.Network().Counters().Add(trace.Key("rpc", "reply", "drop", host), 1)
			}
		case kindNotify:
			c.notifications.TrySend(Notification{Method: env.Method, Body: env.Body, Ctx: env.ctx()})
			host := c.conn.LocalAddr().Host
			c.conn.Network().Tracer().InstantCtx(env.ctx(), "rpc", "notify:"+env.Method, host, c.conn.Flow(), "")
			c.conn.Network().Counters().Add(trace.Key("rpc", "notify", "recv", host), 1)
		}
	}
}

func (c *Client) shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint64]*vtime.Chan[envelope])
	c.mu.Unlock()
	for _, ch := range pending {
		ch.Close()
	}
	c.notifications.Close()
}

// Close tears down the connection. Pending calls fail with ErrClosed.
func (c *Client) Close() {
	c.conn.Close()
	c.shutdown()
}

// Call sends a request and waits up to timeout for the reply, decoding it
// into reply (which may be nil). Remote handler errors come back as
// RemoteError. The call joins the connection's base causal context; use
// CallCtx to parent it elsewhere.
func (c *Client) Call(method string, arg, reply any, timeout time.Duration) error {
	return c.CallCtx(trace.Ctx{}, method, arg, reply, timeout)
}

// CallCtx is Call under an explicit causal span context: the call span
// becomes a child of ctx, and the context rides the envelope so the server
// handler span (and everything below it) lands in the same request tree.
// A zero ctx falls back to the connection's base context.
func (c *Client) CallCtx(ctx trace.Ctx, method string, arg, reply any, timeout time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := vtime.NewChan[envelope](c.sim, fmt.Sprintf("rpc-reply:%d", id), 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if !ctx.Valid() {
		ctx = c.conn.Ctx()
	}
	callCtx := ctx.Child("call:" + method + "#" + strconv.FormatUint(id, 10))
	tr := c.conn.Network().Tracer()
	host := c.conn.LocalAddr().Host
	start := tr.Now()
	startV := c.sim.Now()
	finish := func(outcome string) {
		c.hCall.Record(int64(c.sim.Now() - startV))
		tr.SpanCtx(callCtx, "rpc", "call:"+method, host, c.conn.Flow(), corrID(c.conn, id), start,
			trace.Arg{Key: "outcome", Val: outcome})
		c.conn.Network().Counters().Add(trace.Key("rpc", "call", outcome, host), 1)
	}

	if err := c.send(envelope{ID: id, Kind: kindCall, Method: method, Req: callCtx.Req, Span: callCtx.Span}, arg); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		finish("closed")
		return err
	}
	env, res := ch.RecvTimeout(timeout)
	switch res {
	case vtime.RecvClosed:
		finish("closed")
		return ErrClosed
	case vtime.RecvTimedOut:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		finish("timeout")
		return ErrTimeout
	}
	if env.Error != "" {
		finish("error")
		return RemoteError(env.Error)
	}
	finish("ok")
	if reply != nil && len(env.Body) > 0 {
		return json.Unmarshal(env.Body, reply)
	}
	return nil
}

// Notify sends a one-way message under the connection's base context.
func (c *Client) Notify(method string, arg any) error {
	return c.NotifyCtx(trace.Ctx{}, method, arg)
}

// NotifyCtx sends a one-way message carrying the given causal context.
func (c *Client) NotifyCtx(ctx trace.Ctx, method string, arg any) error {
	if !ctx.Valid() {
		ctx = c.conn.Ctx()
	}
	return c.send(envelope{Kind: kindNotify, Method: method, Req: ctx.Req, Span: ctx.Span}, arg)
}

func (c *Client) send(env envelope, arg any) error {
	if arg != nil {
		body, err := json.Marshal(arg)
		if err != nil {
			return fmt.Errorf("rpc: marshal %s: %w", env.Method, err)
		}
		env.Body = body
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("rpc: marshal envelope: %w", err)
	}
	if err := c.conn.SendCtx(raw, env.ctx()); err != nil {
		return ErrClosed
	}
	return nil
}

// ServerConn is the server's view of one accepted connection. Handlers may
// use it to push notifications back to the client (e.g. GRAM state
// callbacks) and to close the connection.
type ServerConn struct {
	sim  *vtime.Sim
	conn *transport.Conn
	mu   sync.Mutex
	// Meta carries the preamble's result, e.g. the authenticated identity
	// established by a GSI handshake.
	Meta any
	// Ctx is the causal span context of the call currently being handled
	// (the caller's context extended with a "serve" segment). It is set by
	// the per-connection loop immediately before each HandleCall, which
	// runs synchronously in that loop, so handlers may read it to parent
	// their own spans. Outside a call it holds the connection's base
	// context.
	Ctx trace.Ctx
}

// RemoteAddr returns the client's address.
func (sc *ServerConn) RemoteAddr() transport.Addr { return sc.conn.RemoteAddr() }

// Notify pushes a one-way message to the client under the connection's
// base causal context.
func (sc *ServerConn) Notify(method string, arg any) error {
	return sc.NotifyCtx(trace.Ctx{}, method, arg)
}

// NotifyCtx pushes a one-way message carrying the given causal context
// (e.g. an asynchronous job-state callback parented to the submit that
// registered it).
func (sc *ServerConn) NotifyCtx(ctx trace.Ctx, method string, arg any) error {
	if !ctx.Valid() {
		ctx = sc.conn.Ctx()
	}
	env := envelope{Kind: kindNotify, Method: method, Req: ctx.Req, Span: ctx.Span}
	if arg != nil {
		body, err := json.Marshal(arg)
		if err != nil {
			return fmt.Errorf("rpc: marshal %s: %w", method, err)
		}
		env.Body = body
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if err := sc.conn.SendCtx(raw, ctx); err != nil {
		return ErrClosed
	}
	host := sc.conn.LocalAddr().Host
	sc.conn.Network().Tracer().InstantCtx(ctx, "rpc", "notify:"+method, host, sc.conn.Flow(), "")
	sc.conn.Network().Counters().Add(trace.Key("rpc", "notify", "send", host), 1)
	return nil
}

// Close closes the connection.
func (sc *ServerConn) Close() { sc.conn.Close() }

// Handler processes inbound calls and notifications. HandleCall runs
// synchronously in the per-connection loop: its execution time (e.g. a
// simulated initgroups lookup) delays only that connection.
type Handler interface {
	HandleCall(sc *ServerConn, method string, body json.RawMessage) (any, error)
	HandleNotify(sc *ServerConn, method string, body json.RawMessage)
}

// Preamble runs on each new server connection before any envelope is
// processed (e.g. the server side of a GSI handshake). Returning an error
// rejects the connection; the returned value is stored in ServerConn.Meta.
type Preamble func(conn *transport.Conn) (any, error)

// Server accepts connections on a listener and dispatches envelopes to a
// Handler.
type Server struct {
	sim      *vtime.Sim
	listener *transport.Listener
	handler  Handler
	preamble Preamble
}

// Serve starts accepting on l, running preamble (optional) then the
// envelope loop for each connection. It returns immediately; daemons do
// the work.
func Serve(sim *vtime.Sim, l *transport.Listener, handler Handler, preamble Preamble) *Server {
	srv := &Server{sim: sim, listener: l, handler: handler, preamble: preamble}
	sim.GoDaemon("rpc-accept:"+l.Addr().String(), srv.acceptLoop)
	return srv
}

// Addr returns the served address.
func (s *Server) Addr() transport.Addr { return s.listener.Addr() }

// Close stops accepting new connections.
func (s *Server) Close() { s.listener.Close() }

func (s *Server) acceptLoop() {
	for {
		conn, ok := s.listener.Accept()
		if !ok {
			return
		}
		s.sim.GoDaemon("rpc-conn:"+conn.RemoteAddr().String(), func() {
			s.serveConn(conn)
		})
	}
}

func (s *Server) serveConn(conn *transport.Conn) {
	var meta any
	if s.preamble != nil {
		m, err := s.preamble(conn)
		if err != nil {
			conn.Close()
			return
		}
		meta = m
	}
	sc := &ServerConn{sim: s.sim, conn: conn, Meta: meta, Ctx: conn.Ctx()}
	tr := conn.Network().Tracer()
	host := conn.LocalAddr().Host
	hServe := conn.Network().Hists().H("rpc.serve.latency")
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		var env envelope
		if json.Unmarshal(raw, &env) != nil {
			continue
		}
		switch env.Kind {
		case kindCall:
			// The serve span covers handler execution and shares the call's
			// correlation ID, so client and server sides of one RPC line up
			// in the trace. The envelope's span context parents the serve
			// span under the caller's call span.
			serveCtx := env.ctx()
			if !serveCtx.Valid() {
				serveCtx = conn.Ctx()
			}
			serveCtx = serveCtx.Child("serve")
			sc.Ctx = serveCtx
			serveStart := tr.Now()
			serveStartV := s.sim.Now()
			result, err := s.handler.HandleCall(sc, env.Method, env.Body)
			hServe.Record(int64(s.sim.Now() - serveStartV))
			sc.Ctx = conn.Ctx()
			reply := envelope{ID: env.ID, Kind: kindReply, Req: serveCtx.Req, Span: serveCtx.Span}
			outcome := "ok"
			if err != nil {
				reply.Error = err.Error()
				outcome = "error"
			} else if result != nil {
				body, merr := json.Marshal(result)
				if merr != nil {
					reply.Error = "rpc: marshal reply: " + merr.Error()
					outcome = "error"
				} else {
					reply.Body = body
				}
			}
			tr.SpanCtx(serveCtx, "rpc", "serve:"+env.Method, host, conn.Flow(), corrID(conn, env.ID), serveStart,
				trace.Arg{Key: "outcome", Val: outcome})
			conn.Network().Counters().Add(trace.Key("rpc", "serve", outcome, host), 1)
			raw, merr := json.Marshal(reply)
			if merr != nil {
				continue
			}
			if conn.SendCtx(raw, serveCtx) != nil {
				return
			}
		case kindNotify:
			s.handler.HandleNotify(sc, env.Method, env.Body)
		}
	}
}

// HandlerFuncs adapts plain functions to the Handler interface. Nil fields
// reject calls with an error / ignore notifications.
type HandlerFuncs struct {
	Call       func(sc *ServerConn, method string, body json.RawMessage) (any, error)
	NotifyFunc func(sc *ServerConn, method string, body json.RawMessage)
}

// HandleCall implements Handler.
func (h HandlerFuncs) HandleCall(sc *ServerConn, method string, body json.RawMessage) (any, error) {
	if h.Call == nil {
		return nil, fmt.Errorf("rpc: no handler for %s", method)
	}
	return h.Call(sc, method, body)
}

// HandleNotify implements Handler.
func (h HandlerFuncs) HandleNotify(sc *ServerConn, method string, body json.RawMessage) {
	if h.NotifyFunc != nil {
		h.NotifyFunc(sc, method, body)
	}
}

// Decode unmarshals a call body into v, tolerating an empty body.
func Decode(body json.RawMessage, v any) error {
	if len(body) == 0 {
		return nil
	}
	return json.Unmarshal(body, v)
}
