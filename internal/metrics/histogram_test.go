package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistogramExactBelowSubCount(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < histSubCount; v++ {
		h.Record(v)
	}
	for _, b := range h.Buckets() {
		if b.Low != b.High {
			t.Fatalf("bucket [%d,%d] below %d is not exact", b.Low, b.High, histSubCount)
		}
		if b.Count != 1 {
			t.Fatalf("bucket %d count = %d, want 1", b.Low, b.Count)
		}
	}
	if got := h.Count(); got != histSubCount {
		t.Fatalf("Count = %d, want %d", got, histSubCount)
	}
}

func TestHistogramBucketIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and the
	// bucket's relative width must stay within 1/histSubCount.
	values := []int64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 1 << 20,
		(1 << 20) + 12345, 1 << 40, (1 << 62) - 1, 1 << 62, math.MaxInt64}
	for _, v := range values {
		i := bucketIndex(v)
		low, high := bucketBounds(i)
		if v < low || v > high {
			t.Fatalf("value %d mapped to bucket %d = [%d,%d]", v, i, low, high)
		}
		if i >= histBuckets {
			t.Fatalf("value %d mapped out of range: bucket %d >= %d", v, i, histBuckets)
		}
		if v >= histSubCount {
			if rel := float64(high-low) / float64(low); rel > 1.0/histSubCount {
				t.Fatalf("bucket [%d,%d] relative width %f exceeds %f", low, high, rel, 1.0/histSubCount)
			}
		}
	}
}

func TestHistogramQuantileVsExactRank(t *testing.T) {
	// Exact-rank ground truth: sorted[ceil(p*n)-1]. The histogram must
	// return a value in [truth, truth*(1+1/32)] (bucket upper bound).
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	n := 10000
	xs := make([]int64, n)
	for i := range xs {
		v := int64(rng.ExpFloat64() * 1e6)
		xs[i] = v
		h.Record(v)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(p * float64(n)))
		truth := xs[rank-1]
		got := h.Quantile(p)
		if got < truth {
			t.Fatalf("p=%v: Quantile %d below exact-rank value %d", p, got, truth)
		}
		ceiling := truth + truth/histSubCount + 1
		if got > ceiling {
			t.Fatalf("p=%v: Quantile %d exceeds error bound %d (exact %d)", p, got, ceiling, truth)
		}
	}
	if got := h.Quantile(0); got != h.Min() {
		t.Fatalf("Quantile(0) = %d, want Min %d", got, h.Min())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Fatalf("Quantile(1) = %d, want Max %d", got, h.Max())
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Record(5) // must not panic
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Min() != 0 || nilH.Max() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must report zeros")
	}
	nilH.Merge(NewHistogram())
	if nilH.Buckets() != nil {
		t.Fatal("nil histogram must have no buckets")
	}

	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Merge(nil) // must not panic
	h.Record(-17)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample must clamp to 0: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := NewHistogram()
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 30))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := NewHistogram()
	merged.Merge(b) // merge order must not matter
	merged.Merge(a)
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("merged aggregates differ from whole")
	}
	wb, mb := whole.Buckets(), merged.Buckets()
	if len(wb) != len(mb) {
		t.Fatalf("bucket count differs: %d vs %d", len(wb), len(mb))
	}
	for i := range wb {
		if wb[i] != mb[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, wb[i], mb[i])
		}
	}
}

func TestHistogramConcurrentRecordMerge(t *testing.T) {
	// Exercised under -race by the check gate: concurrent Record on a
	// shared histogram plus Merge from shards must be safe and lose
	// nothing once writers are done.
	const writers = 8
	const perWriter = 2000
	shared := NewHistogram()
	shards := make([]*Histogram, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		shards[w] = NewHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*1000 + i)
				shared.Record(v)
				shards[w].Record(v)
			}
		}(w)
	}
	// Concurrent readers while writers run: results are a racing snapshot
	// but must not crash or report impossible values.
	for i := 0; i < 10; i++ {
		_ = shared.Quantile(0.5)
		_ = shared.Buckets()
	}
	wg.Wait()
	if got := shared.Count(); got != writers*perWriter {
		t.Fatalf("shared count = %d, want %d", got, writers*perWriter)
	}
	merged := NewHistogram()
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != shared.Count() || merged.Sum() != shared.Sum() ||
		merged.Min() != shared.Min() || merged.Max() != shared.Max() {
		t.Fatal("sharded merge differs from shared recording")
	}
}

func TestHistogramRecordAllocs(t *testing.T) {
	h := NewHistogram()
	v := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func TestHistogramSet(t *testing.T) {
	var nilSet *HistogramSet
	if nilSet.H("x") != nil {
		t.Fatal("nil set must return nil histogram")
	}
	if nilSet.Names() != nil {
		t.Fatal("nil set must have no names")
	}
	s := NewHistogramSet()
	h1 := s.H("b.latency")
	h2 := s.H("a.latency")
	if s.H("b.latency") != h1 {
		t.Fatal("H must return the same handle per name")
	}
	h1.Record(1)
	h2.Record(2)
	names := s.Names()
	if len(names) != 2 || names[0] != "a.latency" || names[1] != "b.latency" {
		t.Fatalf("Names = %v, want sorted pair", names)
	}
}

// BenchmarkHistogramRecord is the acceptance benchmark: the Record hot
// path must be 0 allocs/op.
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			h.Record(v)
			v += 1009
		}
	})
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		h.Record(int64(rng.ExpFloat64() * 1e6))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
