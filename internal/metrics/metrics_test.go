package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cogrid/internal/vtime"
)

func TestTimelineStartStop(t *testing.T) {
	sim := vtime.New()
	tl := NewTimeline(sim)
	err := sim.Run("main", func() {
		stop := tl.Start("subjob0", "auth")
		sim.Sleep(500 * time.Millisecond)
		stop()
		stop2 := tl.Start("subjob0", "fork")
		sim.Sleep(time.Millisecond)
		stop2()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	spans := tl.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Phase != "auth" || spans[0].Duration() != 500*time.Millisecond {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Start != 500*time.Millisecond || spans[1].Duration() != time.Millisecond {
		t.Errorf("span 1 = %+v", spans[1])
	}
}

func TestTimelinePhaseTotals(t *testing.T) {
	sim := vtime.New()
	tl := NewTimeline(sim)
	tl.Add("a", "auth", 0, time.Second)
	tl.Add("b", "auth", time.Second, 3*time.Second)
	tl.Add("a", "fork", 0, 10*time.Millisecond)
	totals := tl.PhaseTotals()
	if totals["auth"] != 3*time.Second {
		t.Errorf("auth total = %v, want 3s", totals["auth"])
	}
	if totals["fork"] != 10*time.Millisecond {
		t.Errorf("fork total = %v", totals["fork"])
	}
}

func TestTimelineRender(t *testing.T) {
	sim := vtime.New()
	tl := NewTimeline(sim)
	tl.Add("sj0", "gsi", 0, 500*time.Millisecond)
	tl.Add("sj0", "initgroups", 500*time.Millisecond, 1200*time.Millisecond)
	out := tl.Render(40)
	if !strings.Contains(out, "sj0 gsi") || !strings.Contains(out, "sj0 initgroups") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("render has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("render has no bars:\n%s", out)
	}
	// The second phase starts where the first ends: its bar must begin
	// later in the line.
	gsiBar := strings.Index(lines[1], "#")
	igBar := strings.Index(lines[2], "#")
	if igBar <= gsiBar {
		t.Fatalf("initgroups bar starts at %d, gsi at %d:\n%s", igBar, gsiBar, out)
	}
}

func TestTimelineRenderEmpty(t *testing.T) {
	tl := NewTimeline(vtime.New())
	if out := tl.Render(40); !strings.Contains(out, "empty") {
		t.Fatalf("empty render = %q", out)
	}
}

// Regression: spans added out of chronological order must render sorted by
// start time with every bar inside the window — a span ending exactly at the
// window edge used to spill past the right border once zero-length bars were
// widened before clamping.
func TestTimelineRenderOutOfOrderSpans(t *testing.T) {
	const width = 40
	sim := vtime.New()
	tl := NewTimeline(sim)
	// Deliberately out of order, with the last-added span first in time and
	// a zero-length span exactly at the right edge of the window.
	tl.Add("c", "late", 900*time.Millisecond, time.Second)
	tl.Add("b", "edge", time.Second, time.Second)
	tl.Add("a", "early", 0, 300*time.Millisecond)
	out := tl.Render(width)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("render has %d lines, want 4:\n%s", len(lines), out)
	}
	// Rows sorted by start time regardless of Add order.
	for i, want := range []string{"a early", "c late", "b edge"} {
		if !strings.HasPrefix(lines[i+1], want) {
			t.Errorf("row %d = %q, want prefix %q", i+1, lines[i+1], want)
		}
	}
	// Every bar stays within the |...| window.
	for _, line := range lines[1:] {
		open := strings.Index(line, "|")
		close := strings.Index(line[open+1:], "|")
		if close != width {
			t.Errorf("bar field is %d columns, want %d: %q", close, width, line)
		}
		if !strings.Contains(line[open+1:open+1+width], "#") {
			t.Errorf("row has no visible bar: %q", line)
		}
	}
}

// A negative-duration span is a caller bug: Add must panic rather than
// silently corrupting the rendered window.
func TestTimelineAddNegativeDurationPanics(t *testing.T) {
	tl := NewTimeline(vtime.New())
	defer func() {
		if recover() == nil {
			t.Fatal("Add(end < start) did not panic")
		}
	}()
	tl.Add("a", "backwards", time.Second, 500*time.Millisecond)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 2.5 {
		t.Errorf("P50 = %v, want 2.5", s.P50)
	}
	wantSD := math.Sqrt(1.25)
	if math.Abs(s.Stddev-wantSD) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev, wantSD)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.P50 != 7 || s.P95 != 7 || s.Stddev != 0 {
		t.Errorf("single-element summary = %+v", s)
	}
}

// percentile follows the exclusive-interpolation convention (PERCENTILE.EXC):
// h = p*(n+1) on 1-based ranks, clamped to [1, n]. The table pins the edge
// cases the convention is defined by: tiny samples and the p extremes.
func TestPercentileExclusiveConvention(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"n1-p0", []float64{5}, 0.0, 5},
		{"n1-p50", []float64{5}, 0.5, 5},
		{"n1-p100", []float64{5}, 1.0, 5},
		{"n2-p0", []float64{1, 3}, 0.0, 1},
		{"n2-p25", []float64{1, 3}, 0.25, 1}, // h = 0.75, clamped to min
		{"n2-p50", []float64{1, 3}, 0.5, 2},  // h = 1.5: midpoint
		{"n2-p75", []float64{1, 3}, 0.75, 3}, // h = 2.25, clamped to max
		{"n2-p100", []float64{1, 3}, 1.0, 3},
		{"n4-p50", []float64{1, 2, 3, 4}, 0.5, 2.5},     // h = 2.5
		{"n4-p25", []float64{1, 2, 3, 4}, 0.25, 1.25},   // h = 1.25
		{"n4-p95", []float64{1, 2, 3, 4}, 0.95, 4},      // h = 4.75, clamped
		{"n5-p25", []float64{1, 2, 3, 4, 5}, 0.25, 1.5}, // h = 1.5
		{"n5-p75", []float64{1, 2, 3, 4, 5}, 0.75, 4.5}, // h = 4.5
	}
	for _, c := range cases {
		if got := percentile(c.xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v", c.name, c.xs, c.p, got, c.want)
		}
	}
}

func TestSummaryP99(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(xs)
	// h = 0.99*101 = 99.99 -> between the 99th and 100th order statistics.
	if math.Abs(s.P99-99.99) > 1e-9 {
		t.Errorf("P99 = %v, want 99.99", s.P99)
	}
	if s.P99 < s.P95 || s.P99 > s.Max {
		t.Errorf("P99 = %v out of order (P95 %v, Max %v)", s.P99, s.P95, s.Max)
	}
}

// Property: Min <= P50 <= P95 <= Max and Min <= Mean <= Max for any sample.
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			// Bound the domain: summation of extreme magnitudes overflows,
			// which is outside what experiment timings ever produce.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationsToSeconds(t *testing.T) {
	got := DurationsToSeconds([]time.Duration{time.Second, 250 * time.Millisecond})
	if got[0] != 1.0 || got[1] != 0.25 {
		t.Fatalf("got %v", got)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Figure 2", "processes", "latency")
	tb.Add(16, 2100*time.Millisecond)
	tb.Add(64, 2.135)
	out := tb.String()
	if !strings.Contains(out, "Figure 2") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "2.100s") {
		t.Errorf("duration not formatted as seconds:\n%s", out)
	}
	if !strings.Contains(out, "2.135") {
		t.Errorf("float not formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line must be at least as wide as the header.
	if len(lines[3]) < len(lines[1])-8 {
		t.Errorf("row narrower than header:\n%s", out)
	}
}
