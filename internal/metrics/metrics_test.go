package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cogrid/internal/vtime"
)

func TestTimelineStartStop(t *testing.T) {
	sim := vtime.New()
	tl := NewTimeline(sim)
	err := sim.Run("main", func() {
		stop := tl.Start("subjob0", "auth")
		sim.Sleep(500 * time.Millisecond)
		stop()
		stop2 := tl.Start("subjob0", "fork")
		sim.Sleep(time.Millisecond)
		stop2()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	spans := tl.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Phase != "auth" || spans[0].Duration() != 500*time.Millisecond {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Start != 500*time.Millisecond || spans[1].Duration() != time.Millisecond {
		t.Errorf("span 1 = %+v", spans[1])
	}
}

func TestTimelinePhaseTotals(t *testing.T) {
	sim := vtime.New()
	tl := NewTimeline(sim)
	tl.Add("a", "auth", 0, time.Second)
	tl.Add("b", "auth", time.Second, 3*time.Second)
	tl.Add("a", "fork", 0, 10*time.Millisecond)
	totals := tl.PhaseTotals()
	if totals["auth"] != 3*time.Second {
		t.Errorf("auth total = %v, want 3s", totals["auth"])
	}
	if totals["fork"] != 10*time.Millisecond {
		t.Errorf("fork total = %v", totals["fork"])
	}
}

func TestTimelineRender(t *testing.T) {
	sim := vtime.New()
	tl := NewTimeline(sim)
	tl.Add("sj0", "gsi", 0, 500*time.Millisecond)
	tl.Add("sj0", "initgroups", 500*time.Millisecond, 1200*time.Millisecond)
	out := tl.Render(40)
	if !strings.Contains(out, "sj0 gsi") || !strings.Contains(out, "sj0 initgroups") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("render has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("render has no bars:\n%s", out)
	}
	// The second phase starts where the first ends: its bar must begin
	// later in the line.
	gsiBar := strings.Index(lines[1], "#")
	igBar := strings.Index(lines[2], "#")
	if igBar <= gsiBar {
		t.Fatalf("initgroups bar starts at %d, gsi at %d:\n%s", igBar, gsiBar, out)
	}
}

func TestTimelineRenderEmpty(t *testing.T) {
	tl := NewTimeline(vtime.New())
	if out := tl.Render(40); !strings.Contains(out, "empty") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 2.5 {
		t.Errorf("P50 = %v, want 2.5", s.P50)
	}
	wantSD := math.Sqrt(1.25)
	if math.Abs(s.Stddev-wantSD) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev, wantSD)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.P50 != 7 || s.P95 != 7 || s.Stddev != 0 {
		t.Errorf("single-element summary = %+v", s)
	}
}

// Property: Min <= P50 <= P95 <= Max and Min <= Mean <= Max for any sample.
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			// Bound the domain: summation of extreme magnitudes overflows,
			// which is outside what experiment timings ever produce.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationsToSeconds(t *testing.T) {
	got := DurationsToSeconds([]time.Duration{time.Second, 250 * time.Millisecond})
	if got[0] != 1.0 || got[1] != 0.25 {
		t.Fatalf("got %v", got)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Figure 2", "processes", "latency")
	tb.Add(16, 2100*time.Millisecond)
	tb.Add(64, 2.135)
	out := tb.String()
	if !strings.Contains(out, "Figure 2") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "2.100s") {
		t.Errorf("duration not formatted as seconds:\n%s", out)
	}
	if !strings.Contains(out, "2.135") {
		t.Errorf("float not formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line must be at least as wide as the header.
	if len(lines[3]) < len(lines[1])-8 {
		t.Errorf("row narrower than header:\n%s", out)
	}
}
