package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cogrid/internal/vtime"
)

// Gauges are virtual-time level indicators: queue depth, outstanding 2PC
// transactions, busy processors per machine, unreaped orphans. Because
// multiple simulated processes may mutate a gauge within one virtual
// instant — in a real-time order that differs run to run — a gauge does not
// store its "current value". It stores a delta log of (virtual time,
// change) pairs; the value at sample time t is the sum of all deltas
// stamped at or before t. Sums are order-independent within an instant, so
// resampling the log at any fixed cadence yields byte-identical series for
// same-seed runs.

// GaugeSet is a registry of named gauges sharing one virtual clock. All
// methods are nil-safe: a nil *GaugeSet (the default everywhere) records
// nothing.
type GaugeSet struct {
	sim    *vtime.Sim
	mu     sync.Mutex
	gauges map[string]*Gauge
}

// NewGaugeSet creates a gauge registry stamping deltas with sim's clock.
func NewGaugeSet(sim *vtime.Sim) *GaugeSet {
	return &GaugeSet{sim: sim, gauges: map[string]*Gauge{}}
}

// G returns the gauge named name, creating it on first use. Returns nil on
// a nil set, and a nil *Gauge accepts Add as a no-op, so call sites never
// need a guard.
func (s *GaugeSet) G(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{sim: s.sim}
		s.gauges[name] = g
	}
	return g
}

// Names returns the registered gauge names, sorted.
func (s *GaugeSet) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.gauges))
	for n := range s.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Gauge is one level indicator backed by a delta log. The log stores
// running prefix sums rather than raw deltas: the virtual clock is frozen
// while any process runs, so entries are appended in nondecreasing virtual
// time, and the value at any t is just the prefix sum at the last entry
// stamped at or before t — a binary search instead of a full-log scan.
// Prefix sums are accumulated in append order, the exact order the old
// scan summed in, so every reported value is bit-identical to the delta-log
// implementation; and because the last entry of an instant's run folds in
// all of that instant's deltas, sampling stays order-independent within an
// instant.
type Gauge struct {
	sim     *vtime.Sim
	mu      sync.Mutex
	entries []gaugeEntry
}

type gaugeEntry struct {
	at  time.Duration
	cum float64 // prefix sum of all deltas up to and including this entry
}

// Add applies a signed change to the gauge at the current virtual time.
// Nil-safe.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	var cum float64
	if n := len(g.entries); n > 0 {
		cum = g.entries[n-1].cum
	}
	g.entries = append(g.entries, gaugeEntry{at: g.sim.Now(), cum: cum + d})
	g.mu.Unlock()
}

// Value returns the gauge value at virtual time t: the sum of all deltas
// stamped at or before t. Order-independent within an instant, so sampling
// at a fixed t is deterministic for same-seed runs. Nil-safe.
func (g *Gauge) Value(t time.Duration) float64 {
	if g == nil {
		return 0
	}
	return g.at(t)
}

// at returns the gauge value at time t: the prefix sum at the last entry
// stamped <= t. O(log n), allocation-free — cheap enough to sample gauges
// at a fine cadence over a million-job run.
func (g *Gauge) at(t time.Duration) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.atLocked(t)
}

func (g *Gauge) atLocked(t time.Duration) float64 {
	// First entry with at > t; the value is the prefix sum just before it.
	i := sort.Search(len(g.entries), func(i int) bool { return g.entries[i].at > t })
	if i == 0 {
		return 0
	}
	return g.entries[i-1].cum
}

// DeltaBetween returns the net change over the half-open virtual-time
// window (from, to]: the sum of deltas stamped after from and at or before
// to. Like Value it is order-independent within an instant, so windowed
// rate queries at fixed horizons are deterministic. Nil-safe.
func (g *Gauge) DeltaBetween(from, to time.Duration) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.atLocked(to) - g.atLocked(from)
}

// Series is a fixed-cadence resampling of a gauge set: Values[i][j] is
// gauge Names[j] at virtual time Times[i].
type Series struct {
	Step   time.Duration
	Names  []string
	Times  []time.Duration
	Values [][]float64
}

// Series samples every gauge at the fixed cadence step over [0, until],
// inclusive of the final partial step. The result depends only on the
// delta logs, never on sampling order, so same-seed runs produce identical
// series.
func (s *GaugeSet) Series(step, until time.Duration) Series {
	se := Series{Step: step, Names: s.Names()}
	if s == nil || step <= 0 {
		return se
	}
	for t := time.Duration(0); ; t += step {
		if t > until {
			break
		}
		row := make([]float64, len(se.Names))
		for j, name := range se.Names {
			row[j] = s.G(name).at(t)
		}
		se.Times = append(se.Times, t)
		se.Values = append(se.Values, row)
	}
	return se
}

// WriteCSV writes the series as CSV: a header of "t_sec" plus gauge names,
// then one row per sample. Values are formatted with strconv 'g', which is
// deterministic for the integral counts gauges hold.
func (se Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "t_sec,%s\n", strings.Join(se.Names, ",")); err != nil {
		return err
	}
	for i, t := range se.Times {
		cells := make([]string, 0, len(se.Values[i])+1)
		cells = append(cells, strconv.FormatFloat(t.Seconds(), 'g', -1, 64))
		for _, v := range se.Values[i] {
			cells = append(cells, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the series as a single deterministic JSON object.
func (se Series) WriteJSON(w io.Writer) error {
	type sample struct {
		TSec   float64   `json:"t_sec"`
		Values []float64 `json:"values"`
	}
	out := struct {
		StepSec float64  `json:"step_sec"`
		Names   []string `json:"names"`
		Samples []sample `json:"samples"`
	}{StepSec: se.Step.Seconds(), Names: se.Names}
	for i, t := range se.Times {
		out.Samples = append(out.Samples, sample{TSec: t.Seconds(), Values: se.Values[i]})
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}
