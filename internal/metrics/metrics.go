// Package metrics provides timing instrumentation for experiments: phase
// timelines (used to render the paper's Figure 5 submission timeline),
// summary statistics, and aligned text tables for the benchmark harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"cogrid/internal/vtime"
)

// Span is one timed phase of one actor.
type Span struct {
	Actor string
	Phase string
	Start time.Duration
	End   time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Timeline collects spans in virtual time.
type Timeline struct {
	sim   *vtime.Sim
	mu    sync.Mutex
	spans []Span
}

// NewTimeline creates an empty timeline on sim.
func NewTimeline(sim *vtime.Sim) *Timeline { return &Timeline{sim: sim} }

// Start opens a span now; the returned func closes it.
func (t *Timeline) Start(actor, phase string) func() {
	start := t.sim.Now()
	return func() { t.Add(actor, phase, start, t.sim.Now()) }
}

// Add records a completed span. Spans may arrive in any order, but a
// negative-duration span (end < start) is a caller bug — virtual time never
// runs backwards — and Add panics rather than silently corrupting the
// rendered window.
func (t *Timeline) Add(actor, phase string, start, end time.Duration) {
	if end < start {
		panic(fmt.Sprintf("metrics: negative-duration span %s %s: start %v > end %v", actor, phase, start, end))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Actor: actor, Phase: phase, Start: start, End: end})
}

// Spans returns a copy of the recorded spans in insertion order.
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// PhaseTotals sums span durations by phase name.
func (t *Timeline) PhaseTotals() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration)
	for _, s := range t.spans {
		out[s.Phase] += s.Duration()
	}
	return out
}

// Render draws the timeline as a text Gantt chart, one row per span,
// ordered by start time, scaled to width columns.
func (t *Timeline) Render(width int) string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	if width < 10 {
		width = 10
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End < spans[j].End
	})
	minStart, maxEnd := spans[0].Start, spans[0].End
	labelWidth := 0
	for _, s := range spans {
		if s.Start < minStart {
			minStart = s.Start
		}
		if s.End > maxEnd {
			maxEnd = s.End
		}
		if l := len(s.Actor) + 1 + len(s.Phase); l > labelWidth {
			labelWidth = l
		}
	}
	total := maxEnd - minStart
	if total <= 0 {
		total = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s |%s|\n", labelWidth, "", header(total, width))
	for _, s := range spans {
		from := int(int64(s.Start-minStart) * int64(width) / int64(total))
		to := int(int64(s.End-minStart) * int64(width) / int64(total))
		// Clamp into the window before widening zero-length bars, so a span
		// ending exactly at maxEnd still paints at least one cell and never
		// spills past the right border.
		if from >= width {
			from = width - 1
		}
		if to > width {
			to = width
		}
		if to <= from {
			to = from + 1
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("#", to-from) + strings.Repeat(" ", width-to)
		fmt.Fprintf(&sb, "%-*s |%s| %8.3fs + %.3fs\n",
			labelWidth, s.Actor+" "+s.Phase, bar,
			s.Start.Seconds(), s.Duration().Seconds())
	}
	return sb.String()
}

func header(total time.Duration, width int) string {
	left := "t=0s"
	right := fmt.Sprintf("t=%.2fs", total.Seconds())
	if len(left)+len(right)+1 > width {
		return strings.Repeat("-", width)
	}
	return left + strings.Repeat("-", width-len(left)-len(right)) + right
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
	Stddev float64
}

// Summarize computes descriptive statistics. An empty sample yields zeros.
// Callers that need several percentile queries over the same data should
// build a Sample once instead: Summarize sorts on every call.
func Summarize(xs []float64) Summary {
	return NewSample(xs).Summary()
}

// Sample is an immutable set of observations sorted once at construction,
// so repeated Percentile and Summary queries cost a lookup rather than a
// fresh copy-and-sort of the raw data. For fixed-memory streaming
// aggregation use Histogram instead; Sample keeps the exact values and the
// exclusive-percentile convention the experiment tables are locked to.
type Sample struct {
	sorted []float64
	mean   float64
	stddev float64
}

// NewSample copies and sorts xs. The input slice is not retained.
func NewSample(xs []float64) *Sample {
	s := &Sample{sorted: append([]float64(nil), xs...)}
	sort.Float64s(s.sorted)
	if len(s.sorted) == 0 {
		return s
	}
	sum := 0.0
	for _, x := range s.sorted {
		sum += x
	}
	s.mean = sum / float64(len(s.sorted))
	ss := 0.0
	for _, x := range s.sorted {
		d := x - s.mean
		ss += d * d
	}
	s.stddev = math.Sqrt(ss / float64(len(s.sorted)))
	return s
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.sorted) }

// Percentile returns the p-quantile under the exclusive-interpolation
// convention (see percentile). Zero on an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return percentile(s.sorted, p)
}

// Summary returns the descriptive statistics of the sample.
func (s *Sample) Summary() Summary {
	if len(s.sorted) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(s.sorted),
		Mean:   s.mean,
		Min:    s.sorted[0],
		Max:    s.sorted[len(s.sorted)-1],
		P50:    percentile(s.sorted, 0.50),
		P95:    percentile(s.sorted, 0.95),
		P99:    percentile(s.sorted, 0.99),
		Stddev: s.stddev,
	}
}

// percentile interpolates the p-quantile of a sorted sample using the
// exclusive-interpolation convention (Hyndman-Fan type 6, as in
// PERCENTILE.EXC): the 1-based rank is h = p*(n+1), linearly interpolated
// between neighbours and clamped to [1, n], so p = 0.0 yields the minimum
// and p = 1.0 the maximum for every sample size, including n = 1 and n = 2.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	h := p * float64(n+1)
	if h <= 1 {
		return sorted[0]
	}
	if h >= float64(n) {
		return sorted[n-1]
	}
	lo := int(h) // floor; 1 <= lo <= n-1 here
	frac := h - float64(lo)
	return sorted[lo-1]*(1-frac) + sorted[lo]*frac
}

// DurationsToSeconds converts durations to float64 seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Table is an aligned text table for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells are formatted with %v except float64 (%.3f) and
// time.Duration (seconds with %.3fs).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fs", v.Seconds())
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
