package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (version 0.0.4) for the repo's three metric
// families: monotonic counters, virtual-time gauges, and HDR histograms.
// The writer is deterministic — families sorted by name, scopes sorted
// within a family, float formatting via strconv 'g' — so a fixed-seed run
// produces byte-identical exposition text, which the perf determinism test
// locks in. This is the single exposition path shared by simulated runs
// today and (per ROADMAP) real-clock runs later.

// NamedValue is one counter sample handed to WritePrometheus. The metrics
// package cannot import trace (trace imports metrics), so callers convert
// trace.Counters.Snapshot() into this neutral pair form — grid.WriteMetrics
// does it for every embedded registry.
type NamedValue struct {
	Name  string
	Value int64
}

// PromSnapshot bundles the registries for one exposition write. Any field
// may be zero/nil; the corresponding family is simply absent.
type PromSnapshot struct {
	// Prefix is prepended to every metric name; defaults to "cogrid_".
	Prefix string
	// Counters are monotonic counter samples, typically converted from a
	// trace.Counters snapshot.
	Counters []NamedValue
	// Gauges are sampled at virtual time GaugeAt (normally Sim.Now() at
	// end of run).
	Gauges  *GaugeSet
	GaugeAt time.Duration
	// Hists are exposed as native Prometheus histograms with cumulative
	// le-buckets derived from the non-empty HDR buckets.
	Hists *HistogramSet
}

// WritePrometheus writes snap in Prometheus text format. Dotted metric
// names become underscore-separated; a trailing "@scope" suffix (the
// trace.Key convention) becomes a scope="..." label so per-host counters
// stay one family with bounded name cardinality.
func WritePrometheus(w io.Writer, snap PromSnapshot) error {
	prefix := snap.Prefix
	if prefix == "" {
		prefix = "cogrid_"
	}

	// Counters: group rows by sanitized family name so each # TYPE header
	// is emitted once with its scoped samples contiguous beneath it.
	type promRow struct {
		family string
		scope  string
		value  string
	}
	rows := make([]promRow, 0, len(snap.Counters))
	for _, cv := range snap.Counters {
		base, scope := splitScope(cv.Name)
		rows = append(rows, promRow{
			family: prefix + promName(base),
			scope:  scope,
			value:  strconv.FormatInt(cv.Value, 10),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].family != rows[j].family {
			return rows[i].family < rows[j].family
		}
		return rows[i].scope < rows[j].scope
	})
	for i, r := range rows {
		if i == 0 || rows[i-1].family != r.family {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", r.family); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", r.family, promLabels(r.scope), r.value); err != nil {
			return err
		}
	}

	// Gauges, sampled at one fixed virtual instant.
	for _, name := range snap.Gauges.Names() {
		base, scope := splitScope(name)
		family := prefix + promName(base)
		v := snap.Gauges.G(name).Value(snap.GaugeAt)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n",
			family, family, promLabels(scope), formatPromFloat(v)); err != nil {
			return err
		}
	}

	// Histograms: cumulative le-buckets over the non-empty HDR buckets,
	// using each bucket's inclusive upper bound as its le value.
	for _, name := range snap.Hists.Names() {
		h := snap.Hists.H(name)
		base, scope := splitScope(name)
		family := prefix + promName(base)
		labels := scope
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
			return err
		}
		var cum uint64
		for _, b := range h.Buckets() {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				family, promBucketLabels(labels, strconv.FormatInt(b.High, 10)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			family, promBucketLabels(labels, "+Inf"), h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
			family, h.Sum(), family, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// splitScope separates a trace.Key-style name into its base and @scope.
func splitScope(name string) (base, scope string) {
	if i := strings.LastIndexByte(name, '@'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// promName sanitizes a dotted metric base name into [a-zA-Z0-9_:]+.
func promName(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func promLabels(scope string) string {
	if scope == "" {
		return ""
	}
	return `{scope="` + escapeLabel(scope) + `"}`
}

func promBucketLabels(scope, le string) string {
	if scope == "" {
		return `{le="` + le + `"}`
	}
	return `{scope="` + escapeLabel(scope) + `",le="` + le + `"}`
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
