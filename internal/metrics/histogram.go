package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram is a fixed-memory, log-bucketed (HDR-style) histogram of
// non-negative int64 samples — latencies in nanoseconds, message sizes in
// bytes, batch sizes in events. The bucket scheme is log-linear: values
// below histSubCount are recorded exactly; above that, each power-of-two
// octave is split into histSubCount linear sub-buckets, so any recorded
// value is reproduced by a percentile query within a relative error of
// 1/histSubCount (3.125%). The full int64 range fits in histBuckets
// buckets of 8 bytes each (~15 KiB), allocated once.
//
// Record is allocation-free and lock-free: one atomic add into the bucket
// array plus atomic count/sum/min/max maintenance, safe for concurrent
// writers (TestHistogramRecordAllocs and BenchmarkHistogramRecord prove
// 0 allocs/op). Merge and all queries are also safe concurrently with
// writers; queries see a near-point-in-time view.
//
// All methods are nil-safe: a nil *Histogram records nothing and reports
// zeros, so call sites never need a guard — the same convention as
// trace.Counter and Gauge.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

const (
	// histSubBits fixes the sub-bucket resolution: 2^histSubBits linear
	// sub-buckets per octave.
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32: ≤3.125% relative error

	// histBuckets covers [0, 2^63): histSubCount exact buckets plus
	// histSubCount sub-buckets for each of the 63-histSubBits octaves
	// above them.
	histBuckets = histSubCount + histSubCount*(63-histSubBits)
)

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	// Values in [histSubCount·2^t, 2·histSubCount·2^t) land in octave t
	// with linear sub-bucket width 2^t.
	t := bits.Len64(uint64(v)) - histSubBits - 1
	return histSubCount*t + int(v>>uint(t))
}

// bucketBounds returns the lowest and highest value mapping to bucket i.
func bucketBounds(i int) (low, high int64) {
	if i < histSubCount {
		return int64(i), int64(i)
	}
	t := i/histSubCount - 1
	r := int64(i - histSubCount*t)
	return r << uint(t), ((r + 1) << uint(t)) - 1
}

// Record adds one sample. Negative samples are clamped to zero (virtual
// time never runs backwards; a negative duration is a caller bug we keep
// visible in the zero bucket rather than dropping). Nil-safe, 0 allocs/op.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	atomicMin(&h.min, v)
	atomicMax(&h.max, v)
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile answers an exact-rank percentile query: it locates the sample
// of 1-based rank ceil(p·n) — no interpolation between neighbours — and
// returns the upper bound of its bucket, clamped into [Min, Max]. The
// rank selection is exact; only the returned value is quantized, to
// within 3.125% above the true sample. p ≤ 0 yields Min, p ≥ 1 yields
// Max, and an empty histogram yields 0.
func (h *Histogram) Quantile(p float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += int64(c)
		if seen >= rank {
			_, high := bucketBounds(i)
			if min := h.min.Load(); high < min {
				high = min
			}
			if max := h.max.Load(); high > max {
				high = max
			}
			return high
		}
	}
	return h.Max() // racing writers: fall back to the observed maximum
}

// Merge folds every sample recorded in o into h. Merging is deterministic:
// the merged bucket counts depend only on the two operands, never on
// recording order, so merging shard histograms yields byte-identical
// exports run to run. Nil-safe in both positions.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	var added, sum int64
	for i := 0; i < histBuckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
			added += int64(c)
		}
	}
	if added == 0 {
		return
	}
	sum = o.sum.Load()
	h.count.Add(added)
	h.sum.Add(sum)
	atomicMin(&h.min, o.min.Load())
	atomicMax(&h.max, o.max.Load())
}

// HistogramBucket is one non-empty bucket of a snapshot: Count samples
// fell in [Low, High].
type HistogramBucket struct {
	Low   int64
	High  int64
	Count uint64
}

// Buckets returns the non-empty buckets in ascending value order — the
// exposition surface WritePrometheus cumulates into le-bounds.
func (h *Histogram) Buckets() []HistogramBucket {
	if h == nil {
		return nil
	}
	var out []HistogramBucket
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c != 0 {
			low, high := bucketBounds(i)
			out = append(out, HistogramBucket{Low: low, High: high, Count: c})
		}
	}
	return out
}

// HistogramSet is a registry of named histograms, the distribution
// counterpart of trace.Counters: layers look their histogram up once (or
// per event — the lookup is one read-locked map access) and Record on the
// returned handle. Names follow the layer.object.noun convention, with
// latency-valued histograms recording virtual nanoseconds. A nil
// *HistogramSet is a valid no-op registry.
type HistogramSet struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewHistogramSet creates an empty registry.
func NewHistogramSet() *HistogramSet {
	return &HistogramSet{m: make(map[string]*Histogram)}
}

// H returns the histogram named name, creating it on first use. Returns
// nil on a nil registry; the nil histogram accepts Record as a no-op.
func (s *HistogramSet) H(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	h, ok := s.m[name]
	s.mu.RUnlock()
	if ok {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok = s.m[name]; ok {
		return h
	}
	h = NewHistogram()
	s.m[name] = h
	return h
}

// Names returns the registered histogram names, sorted.
func (s *HistogramSet) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.m))
	for n := range s.m {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}
