package metrics

import (
	"sort"
	"sync"
	"time"

	"cogrid/internal/vtime"
)

// Sample logs are the windowed twin of histograms. A Histogram aggregates
// forever — perfect for end-of-run quantiles, useless for "p95 over the
// last two minutes". A SampleLog keeps each observation with its virtual
// timestamp so any time window can be re-queried after the fact, and —
// because the multiset of samples stamped at or before a horizon t is
// final once the virtual clock passes t — windowed queries at a lagged
// horizon are deterministic for same-seed runs even though samples from
// one instant arrive in racy real-time order. The SLO engine evaluates
// burn rates exclusively against these logs (and gauge delta logs), never
// against live cumulative atomics.

// SampleLogSet is a registry of named sample logs sharing one virtual
// clock. All methods are nil-safe.
type SampleLogSet struct {
	sim  *vtime.Sim
	mu   sync.Mutex
	logs map[string]*SampleLog
}

// NewSampleLogSet creates a sample-log registry stamping with sim's clock.
func NewSampleLogSet(sim *vtime.Sim) *SampleLogSet {
	return &SampleLogSet{sim: sim, logs: map[string]*SampleLog{}}
}

// L returns the log named name, creating it on first use. Returns nil on a
// nil set; a nil *SampleLog accepts Record as a no-op.
func (s *SampleLogSet) L(name string) *SampleLog {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.logs[name]
	if l == nil {
		l = &SampleLog{sim: s.sim}
		s.logs[name] = l
	}
	return l
}

// Names returns the registered log names, sorted.
func (s *SampleLogSet) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.logs))
	for n := range s.logs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SampleLog is one timestamped observation stream.
type SampleLog struct {
	sim     *vtime.Sim
	mu      sync.Mutex
	samples []timedSample
}

type timedSample struct {
	at time.Duration
	v  int64
}

// Record appends v stamped with the current virtual time. Nil-safe.
func (l *SampleLog) Record(v int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.samples = append(l.samples, timedSample{at: l.sim.Now(), v: v})
	l.mu.Unlock()
}

// Count returns the number of recorded samples. Nil-safe.
func (l *SampleLog) Count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Window materializes the samples stamped in the half-open virtual-time
// window (from, to], sorted by value — a deterministic multiset for any
// horizon the virtual clock has passed. Nil-safe (returns an empty window).
func (l *SampleLog) Window(from, to time.Duration) SampleWindow {
	if l == nil {
		return SampleWindow{}
	}
	l.mu.Lock()
	var vals []int64
	for _, s := range l.samples {
		if s.at > from && s.at <= to {
			vals = append(vals, s.v)
		}
	}
	l.mu.Unlock()
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return SampleWindow{values: vals}
}

// SampleWindow is one windowed query result: an immutable sorted multiset.
type SampleWindow struct {
	values []int64
}

// Count returns the number of samples in the window.
func (w SampleWindow) Count() int { return len(w.values) }

// CountAbove returns how many samples exceed v.
func (w SampleWindow) CountAbove(v int64) int {
	return len(w.values) - sort.Search(len(w.values), func(i int) bool { return w.values[i] > v })
}

// Quantile returns the exact-rank q-quantile (0 <= q <= 1) of the window,
// or 0 on an empty window.
func (w SampleWindow) Quantile(q float64) int64 {
	if len(w.values) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(q * float64(len(w.values)-1))
	return w.values[i]
}
