package metrics

import (
	"testing"
	"time"

	"cogrid/internal/vtime"
)

func TestSampleLogWindow(t *testing.T) {
	sim := vtime.NewSeeded(1)
	set := NewSampleLogSet(sim)
	err := sim.Run("main", func() {
		l := set.L("lat")
		for i := 1; i <= 10; i++ {
			sim.SleepUntil(time.Duration(i) * time.Second)
			l.Record(int64(i) * 100)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	l := set.L("lat")
	if l.Count() != 10 {
		t.Fatalf("count: %d", l.Count())
	}
	// (3s, 7s]: samples at 4..7 seconds, values 400..700.
	w := l.Window(3*time.Second, 7*time.Second)
	if w.Count() != 4 {
		t.Fatalf("window count: %d", w.Count())
	}
	if got := w.CountAbove(500); got != 2 {
		t.Fatalf("count above 500: %d", got)
	}
	if got := w.Quantile(0); got != 400 {
		t.Fatalf("q0: %d", got)
	}
	if got := w.Quantile(1); got != 700 {
		t.Fatalf("q1: %d", got)
	}
	// Empty window and boundary exclusivity: (7s, 7s] holds nothing.
	if got := l.Window(7*time.Second, 7*time.Second).Count(); got != 0 {
		t.Fatalf("empty window: %d", got)
	}
}

func TestSampleLogNilSafe(t *testing.T) {
	var set *SampleLogSet
	l := set.L("x")
	l.Record(1)
	if l.Count() != 0 || set.Names() != nil {
		t.Fatal("nil set must be inert")
	}
	w := l.Window(0, time.Hour)
	if w.Count() != 0 || w.Quantile(0.5) != 0 || w.CountAbove(0) != 0 {
		t.Fatal("nil log window must be empty")
	}
}

func TestGaugeDeltaBetween(t *testing.T) {
	sim := vtime.NewSeeded(1)
	set := NewGaugeSet(sim)
	err := sim.Run("main", func() {
		g := set.G("drops")
		sim.SleepUntil(10 * time.Second)
		g.Add(2)
		sim.SleepUntil(20 * time.Second)
		g.Add(3)
		sim.SleepUntil(30 * time.Second)
		g.Add(-1)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	g := set.G("drops")
	if got := g.DeltaBetween(0, 30*time.Second); got != 4 {
		t.Fatalf("full delta: %g", got)
	}
	// (10s, 20s]: excludes the delta at exactly 10s, includes 20s.
	if got := g.DeltaBetween(10*time.Second, 20*time.Second); got != 3 {
		t.Fatalf("half-open delta: %g", got)
	}
	if got := g.DeltaBetween(20*time.Second, 25*time.Second); got != 0 {
		t.Fatalf("quiet window delta: %g", got)
	}
	var nilG *Gauge
	if nilG.DeltaBetween(0, time.Hour) != 0 {
		t.Fatal("nil gauge delta must be 0")
	}
}
