package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"cogrid/internal/vtime"
)

func promFixture(sim *vtime.Sim) PromSnapshot {
	gs := NewGaugeSet(sim)
	gs.G("broker.queue_depth@b0").Add(3)
	gs.G("lrm.busy@m1").Add(7)
	hs := NewHistogramSet()
	h := hs.H("rpc.call.latency")
	for _, v := range []int64{10, 20, 100, 5000} {
		h.Record(v)
	}
	return PromSnapshot{
		Counters: []NamedValue{
			{Name: "rpc.call.ok@workstation", Value: 12},
			{Name: "rpc.call.ok@m1", Value: 4},
			{Name: "transport.msgs.send@m1", Value: 99},
		},
		Gauges:  gs,
		GaugeAt: sim.Now(),
		Hists:   hs,
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	sim := vtime.New()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promFixture(sim)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cogrid_rpc_call_ok counter",
		`cogrid_rpc_call_ok{scope="m1"} 4`,
		`cogrid_rpc_call_ok{scope="workstation"} 12`,
		`cogrid_transport_msgs_send{scope="m1"} 99`,
		"# TYPE cogrid_broker_queue_depth gauge",
		`cogrid_broker_queue_depth{scope="b0"} 3`,
		`cogrid_lrm_busy{scope="m1"} 7`,
		"# TYPE cogrid_rpc_call_latency histogram",
		`cogrid_rpc_call_latency_bucket{le="+Inf"} 4`,
		"cogrid_rpc_call_latency_sum 5130",
		"cogrid_rpc_call_latency_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One # TYPE header per family, with scoped samples contiguous.
	if strings.Count(out, "# TYPE cogrid_rpc_call_ok counter") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}
	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(out, `cogrid_rpc_call_latency_bucket{le="10"} 1`) {
		t.Fatalf("missing first cumulative bucket:\n%s", out)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	sim := vtime.New()
	snap := promFixture(sim)
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("repeated exposition writes differ")
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, PromSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot produced output: %q", buf.String())
	}
}

func TestGaugeValue(t *testing.T) {
	sim := vtime.New()
	gs := NewGaugeSet(sim)
	g := gs.G("q")
	g.Add(2)
	g.Add(3)
	if got := g.Value(0); got != 5 {
		t.Fatalf("Value(0) = %v, want 5", got)
	}
	var nilG *Gauge
	if nilG.Value(time.Second) != 0 {
		t.Fatal("nil gauge Value must be 0")
	}
}

func TestGaugeSetConcurrentWriters(t *testing.T) {
	// Under -race: concurrent G lookups and Adds across goroutines must be
	// safe, and the delta sum must come out exact.
	sim := vtime.New()
	gs := NewGaugeSet(sim)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				gs.G("shared").Add(1)
				gs.G("shared").Add(-1)
				gs.G("counted").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := gs.G("shared").Value(0); got != 0 {
		t.Fatalf("shared gauge = %v, want 0", got)
	}
	if got := gs.G("counted").Value(0); got != writers*perWriter {
		t.Fatalf("counted gauge = %v, want %d", got, writers*perWriter)
	}
}

func TestSampleMatchesSummarize(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3, 9, 7}
	s := NewSample(xs)
	if s.Summary() != Summarize(xs) {
		t.Fatal("Sample.Summary must equal Summarize")
	}
	// Repeated percentile queries reuse the cached sort.
	if s.Percentile(0) != 1 || s.Percentile(1) != 9 {
		t.Fatalf("Percentile endpoints wrong: %v %v", s.Percentile(0), s.Percentile(1))
	}
	if s.N() != len(xs) {
		t.Fatalf("N = %d, want %d", s.N(), len(xs))
	}
	empty := NewSample(nil)
	if empty.Percentile(0.5) != 0 || empty.Summary() != (Summary{}) {
		t.Fatal("empty sample must report zeros")
	}
	// The input slice must not be mutated (Summarize's historical contract).
	if xs[0] != 5 {
		t.Fatal("NewSample mutated its input")
	}
}
