package transport

import (
	"testing"
	"time"

	"cogrid/internal/vtime"
)

func TestDialRetriesThroughTransientPartition(t *testing.T) {
	sim, net, a, b := testNet(t)
	if _, err := b.Listen("svc"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	err := sim.Run("client", func() {
		net.Partition("a", "b")
		sim.AfterFunc(5*time.Second, func() { net.Heal("a", "b") })
		start := sim.Now()
		conn, err := a.Dial(Addr{Host: "b", Service: "svc"})
		if err != nil {
			t.Errorf("Dial through healed partition: %v", err)
			return
		}
		defer conn.Close()
		// SYN retries land within a second of the heal.
		if took := sim.Now() - start; took < 5*time.Second || took > 7*time.Second {
			t.Errorf("dial took %v, want just after the 5s heal", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDialRetryStillTimesOutWhenNeverHealed(t *testing.T) {
	sim, net, a, b := testNet(t)
	if _, err := b.Listen("svc"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	err := sim.Run("client", func() {
		net.Partition("a", "b")
		start := sim.Now()
		if _, err := a.Dial(Addr{Host: "b", Service: "svc"}); err != ErrDialTimeout {
			t.Errorf("Dial = %v, want timeout", err)
		}
		if took := sim.Now() - start; took != DialTimeout {
			t.Errorf("gave up after %v, want %v", took, DialTimeout)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	sim, _, _, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	accepted := vtime.NewChan[bool](sim, "accepted", 1)
	sim.GoDaemon("server", func() {
		_, ok := l.Accept()
		accepted.Send(ok)
	})
	err = sim.Run("main", func() {
		sim.Sleep(time.Second)
		l.Close()
		ok, _ := accepted.Recv()
		if ok {
			t.Error("Accept reported a connection after Close")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestListenerCloseAllowsRelisten(t *testing.T) {
	sim, _, _, b := testNet(t)
	err := sim.Run("main", func() {
		l, err := b.Listen("svc")
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		l.Close()
		if _, err := b.Listen("svc"); err != nil {
			t.Errorf("re-Listen after Close: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDialFromCrashedHostFails(t *testing.T) {
	sim, _, a, b := testNet(t)
	if _, err := b.Listen("svc"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	err := sim.Run("main", func() {
		a.Crash()
		if _, err := a.Dial(Addr{Host: "b", Service: "svc"}); err != ErrHostDown {
			t.Errorf("Dial from crashed host = %v, want ErrHostDown", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestManyConnectionsBetweenSameHosts(t *testing.T) {
	sim, _, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		for {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			sim.GoDaemon("echo", func() {
				for {
					msg, err := conn.Recv()
					if err != nil {
						return
					}
					if conn.Send(msg) != nil {
						return
					}
				}
			})
		}
	})
	const n = 32
	wg := vtime.NewWaitGroup(sim)
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		sim.Go("client", func() {
			defer wg.Done()
			conn, err := a.Dial(Addr{Host: "b", Service: "svc"})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer conn.Close()
			if err := conn.Send([]byte{byte(i)}); err != nil {
				t.Errorf("client %d send: %v", i, err)
				return
			}
			msg, err := conn.Recv()
			if err != nil || msg[0] != byte(i) {
				t.Errorf("client %d echo = %v, %v", i, msg, err)
			}
		})
	}
	sim.Go("main", func() { wg.Wait() })
	if err := sim.Wait(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}
