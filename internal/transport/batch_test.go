package transport

import (
	"fmt"
	"testing"
	"time"

	"cogrid/internal/trace"
	"cogrid/internal/vtime"
)

// TestSendqFullDropAccounting is the regression test for the silent-loss
// bug: when the delivery queue saturates, Send used to ignore the TrySend
// result, so messages counted as sent simply vanished. Every sent message
// must now be accounted as either received or dropped.
func TestSendqFullDropAccounting(t *testing.T) {
	sim, net, a, b := testNet(t)
	ctrs := trace.NewCounters()
	net.SetCounters(ctrs)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	})
	const sends = 6000 // well past the 4096-slot delivery queue
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		// All sends land at the same virtual instant: the delivery daemon
		// cannot drain between them, so the out queue saturates.
		for i := 0; i < sends; i++ {
			if err := conn.Send([]byte("m")); err != nil {
				t.Errorf("Send %d: %v", i, err)
			}
		}
		sim.Sleep(time.Second) // let deliveries finish
		conn.Close()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if net.Messages() != sends {
		t.Fatalf("Messages = %d, want %d", net.Messages(), sends)
	}
	recvd := ctrs.Get(trace.Key("transport", "msgs", "recv", "b"))
	dropped := ctrs.Get(trace.Key("transport", "msgs", "drop", "a"))
	if dropped == 0 {
		t.Error("no drops accounted: the saturated send queue lost messages silently")
	}
	if recvd+dropped != sends {
		t.Errorf("recv %d + drop %d = %d, want %d: messages vanished without accounting",
			recvd, dropped, recvd+dropped, sends)
	}
}

// TestCloseFINReliableUnderOverload is the regression test for the lost-FIN
// bug: Close used to enqueue its FIN with a blind TrySend, so under
// overload the peer never learned of the close and hung in Recv until its
// timeout. The peer must observe ErrClosed even when the delivery queue was
// saturated at close time.
func TestCloseFINReliableUnderOverload(t *testing.T) {
	sim, _, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	result := vtime.NewChan[error](sim, "result", 1)
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			_, err := conn.RecvTimeout(time.Hour)
			if err != nil {
				result.Send(err)
				return
			}
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		// Saturate the delivery queue, then close while it is still full.
		for i := 0; i < 6000; i++ {
			conn.Send([]byte("m"))
		}
		conn.Close()
		got, _ := result.Recv()
		if got != ErrClosed {
			t.Errorf("peer Recv after overloaded close = %v, want ErrClosed (FIN was lost)", got)
		}
		if sim.Now() >= time.Hour {
			t.Errorf("peer only noticed the close via timeout at t=%v", sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// TestDialVsCrashRace is the regression test for the dial/crash window:
// DialCtx used to check the local host's state, drop the network lock for
// the SYN sleep, and re-acquire it to register the conn pair without
// re-checking — a crash in that window registered live connections on a
// swept host. The dial must fail, and neither host may end up with a
// registered connection. Run under -race in CI.
func TestDialVsCrashRace(t *testing.T) {
	sim, net, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		for {
			if _, ok := l.Accept(); !ok {
				return
			}
		}
	})
	err = sim.Run("client", func() {
		// The dial's SYN sleep covers (0, 1ms); crash in the middle of it.
		sim.AfterFunc(500*time.Microsecond, func() { a.Crash() })
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != ErrHostDown {
			t.Errorf("Dial racing with local crash = %v, want ErrHostDown", err)
		}
		if conn != nil {
			t.Error("Dial racing with local crash returned a connection")
		}
		sim.Sleep(10 * time.Millisecond)
		net.mu.Lock()
		aConns, bConns := len(a.conns), len(b.conns)
		net.mu.Unlock()
		if aConns != 0 || bConns != 0 {
			t.Errorf("connections registered on swept hosts: a=%d b=%d, want 0", aConns, bConns)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// batchEcho runs one send-heavy scenario and returns the exact sequence of
// messages the server received plus the virtual time of the last delivery.
func batchEcho(t *testing.T, batch BatchOptions, sends int) ([]string, time.Duration) {
	t.Helper()
	sim := vtime.New()
	net := New(sim, UniformLatency(time.Millisecond))
	a, b := net.AddHost("a"), net.AddHost("b")
	net.SetBatching(batch)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var got []string
	var lastAt time.Duration
	done := vtime.NewChan[struct{}](sim, "done", 1)
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				done.Send(struct{}{})
				return
			}
			got = append(got, string(msg))
			lastAt = sim.Now()
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		for i := 0; i < sends; i++ {
			if err := conn.Send([]byte(fmt.Sprintf("msg-%04d", i))); err != nil {
				t.Errorf("Send %d: %v", i, err)
			}
			if i%7 == 6 {
				sim.Sleep(50 * time.Microsecond) // spread sends across ticks
			}
		}
		sim.Sleep(time.Second)
		conn.Close()
		done.Recv()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return got, lastAt
}

// TestBatchedDeliveryOrderAndDeterminism pins the two properties batching
// must not cost: the receiver sees exactly the unbatched message sequence
// (nothing lost, reordered, or duplicated), and a batched run is
// byte-identical across executions.
func TestBatchedDeliveryOrderAndDeterminism(t *testing.T) {
	const sends = 200
	batch := BatchOptions{MaxMsgs: 16, MaxBytes: 1 << 10, Delay: 200 * time.Microsecond}
	plain, _ := batchEcho(t, BatchOptions{}, sends)
	batched, at1 := batchEcho(t, batch, sends)
	again, at2 := batchEcho(t, batch, sends)

	if len(plain) != sends {
		t.Fatalf("unbatched run delivered %d of %d messages", len(plain), sends)
	}
	if len(batched) != sends {
		t.Fatalf("batched run delivered %d of %d messages", len(batched), sends)
	}
	for i := range plain {
		if plain[i] != batched[i] {
			t.Fatalf("message %d: batched %q != unbatched %q (order not preserved)", i, batched[i], plain[i])
		}
	}
	if at1 != at2 || len(batched) != len(again) {
		t.Fatalf("batched run not deterministic: lastAt %v vs %v, %d vs %d msgs", at1, at2, len(batched), len(again))
	}
	for i := range batched {
		if batched[i] != again[i] {
			t.Fatalf("message %d differs across identical batched runs: %q vs %q", i, batched[i], again[i])
		}
	}
}

// TestBatchFlushTriggers checks both flush paths: a full batch goes out
// immediately (no Delay wait), and a lone message waits exactly the batch
// delay before crossing the wire.
func TestBatchFlushTriggers(t *testing.T) {
	sim, net, a, b := testNet(t)
	const delay = 500 * time.Microsecond
	net.SetBatching(BatchOptions{MaxMsgs: 4, Delay: delay})
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	arrivals := vtime.NewChan[time.Duration](sim, "arrivals", 64)
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
			arrivals.Send(sim.Now())
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		// Four sends fill the batch: it must flush now, not after Delay.
		start := sim.Now()
		for i := 0; i < 4; i++ {
			conn.Send([]byte("x"))
		}
		for i := 0; i < 4; i++ {
			at, _ := arrivals.Recv()
			if want := start + time.Millisecond; at != want {
				t.Errorf("full-batch message %d arrived at %v, want %v (size flush must not wait)", i, at, want)
			}
		}
		// A lone send flushes on the timer: wire latency plus Delay.
		start = sim.Now()
		conn.Send([]byte("y"))
		at, _ := arrivals.Recv()
		if want := start + delay + time.Millisecond; at != want {
			t.Errorf("lone message arrived at %v, want %v (timer flush)", at, want)
		}
		conn.Close()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// TestCloseFlushesPendingBatch: messages coalesced but not yet flushed at
// close time must still be delivered, ahead of the FIN.
func TestCloseFlushesPendingBatch(t *testing.T) {
	sim, net, a, b := testNet(t)
	net.SetBatching(BatchOptions{MaxMsgs: 64, Delay: time.Millisecond})
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	got := vtime.NewChan[string](sim, "got", 8)
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				got.Close()
				return
			}
			got.Send(string(msg))
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		for _, m := range []string{"one", "two", "three"} {
			conn.Send([]byte(m))
		}
		conn.Close() // batch still pending: close must flush it first
		for _, want := range []string{"one", "two", "three"} {
			msg, ok := got.Recv()
			if !ok || msg != want {
				t.Errorf("got %q (ok=%t), want %q delivered before the FIN", msg, ok, want)
			}
		}
		if _, ok := got.Recv(); ok {
			t.Error("unexpected extra message after the flushed batch")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
