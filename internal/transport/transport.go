// Package transport implements a simulated message network over the vtime
// kernel: named hosts, service listeners, reliable in-order connections
// with configurable latency, and failure injection (crash, hang,
// partition).
//
// The failure model distinguishes the two failure visibilities the paper
// cares about: a *crash* closes connections so peers get an explicit error,
// while a *hang* silently drops traffic so peers observe only lack of
// progress and must rely on timeouts.
package transport

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cogrid/internal/flightrec"
	"cogrid/internal/metrics"
	"cogrid/internal/trace"
	"cogrid/internal/vtime"
)

// Errors returned by transport operations.
var (
	ErrHostDown    = errors.New("transport: local host is down")
	ErrRefused     = errors.New("transport: connection refused")
	ErrDialTimeout = errors.New("transport: dial timed out")
	ErrClosed      = errors.New("transport: connection closed")
	ErrRecvTimeout = errors.New("transport: receive timed out")
)

// Addr names a service endpoint as host:service.
type Addr struct {
	Host    string
	Service string
}

func (a Addr) String() string { return a.Host + ":" + a.Service }

// ParseAddr splits "host:service" into an Addr.
func ParseAddr(s string) (Addr, error) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			if i == 0 || i == len(s)-1 {
				break
			}
			return Addr{Host: s[:i], Service: s[i+1:]}, nil
		}
	}
	return Addr{}, fmt.Errorf("transport: malformed address %q", s)
}

// LatencyModel yields the one-way message latency between two hosts.
type LatencyModel interface {
	Latency(from, to string) time.Duration
}

// UniformLatency is a LatencyModel with a single inter-host latency and
// zero latency between co-located endpoints.
type UniformLatency time.Duration

// Latency implements LatencyModel.
func (u UniformLatency) Latency(from, to string) time.Duration {
	if from == to {
		return 0
	}
	return time.Duration(u)
}

// MatrixLatency is a LatencyModel with per-host-pair latencies. Pairs are
// symmetric; missing pairs fall back to Default.
type MatrixLatency struct {
	Default time.Duration
	mu      sync.Mutex
	pairs   map[[2]string]time.Duration
}

// NewMatrixLatency creates a MatrixLatency with the given fallback.
func NewMatrixLatency(def time.Duration) *MatrixLatency {
	return &MatrixLatency{Default: def, pairs: make(map[[2]string]time.Duration)}
}

// Set assigns the symmetric latency between hosts a and b.
func (m *MatrixLatency) Set(a, b string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pairs[pairKey(a, b)] = d
}

// Latency implements LatencyModel.
func (m *MatrixLatency) Latency(from, to string) time.Duration {
	if from == to {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.pairs[pairKey(from, to)]; ok {
		return d
	}
	return m.Default
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// BatchOptions configures same-destination send coalescing. When enabled
// (Delay > 0), a connection's sends are gathered into a pending batch that
// is flushed onto the wire as one delivery either when it reaches MaxMsgs
// messages or MaxBytes payload bytes, or Delay of virtual time after its
// first message — whichever comes first. Batching preserves per-connection
// FIFO order and per-message drop/recv accounting; it reduces the number
// of delivery-pipeline operations (and so the simulator's per-message
// cost) at the price of up to Delay of added latency on lightly loaded
// connections.
type BatchOptions struct {
	// MaxMsgs flushes a batch when it holds this many messages
	// (default 32).
	MaxMsgs int
	// MaxBytes flushes a batch when it holds this many payload bytes
	// (default 64 KiB).
	MaxBytes int
	// Delay is the virtual-time flush tick: a batch never waits longer
	// than this after its first message. Zero disables batching.
	Delay time.Duration
}

func (o BatchOptions) enabled() bool { return o.Delay > 0 }

// SetBatching installs batch as the coalescing policy for connections
// created from now on; existing connections keep the policy they were
// created with. A zero Delay disables batching (the default).
func (n *Network) SetBatching(batch BatchOptions) {
	if batch.MaxMsgs <= 0 {
		batch.MaxMsgs = 32
	}
	if batch.MaxBytes <= 0 {
		batch.MaxBytes = 64 << 10
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.batch = batch
}

// hostState models the failure condition of a host.
type hostState int

const (
	hostUp hostState = iota
	hostCrashed
	hostHung
)

// Network is a simulated network of hosts.
type Network struct {
	sim     *vtime.Sim
	latency LatencyModel

	mu         sync.Mutex
	hosts      map[string]*Host
	partitions map[[2]string]bool
	batch      BatchOptions
	connSeq    uint64 // establishment order, for deterministic failure sweeps

	msgs  atomic.Int64
	bytes atomic.Int64

	tracer   atomic.Pointer[trace.Tracer]
	counters atomic.Pointer[trace.Counters]
	gauges   atomic.Pointer[metrics.GaugeSet]
	hists    atomic.Pointer[metrics.HistogramSet]
	samples  atomic.Pointer[metrics.SampleLogSet]
	flight   atomic.Pointer[flightrec.Recorder]
}

// New creates a network on sim with the given latency model.
func New(sim *vtime.Sim, latency LatencyModel) *Network {
	return &Network{
		sim:        sim,
		latency:    latency,
		hosts:      make(map[string]*Host),
		partitions: make(map[[2]string]bool),
	}
}

// Sim returns the kernel the network runs on.
func (n *Network) Sim() *vtime.Sim { return n.sim }

// Messages returns the total number of payload messages sent.
func (n *Network) Messages() int64 { return n.msgs.Load() }

// Bytes returns the total payload bytes sent.
func (n *Network) Bytes() int64 { return n.bytes.Load() }

// SetTracer attaches a tracer to the network. Every layer above (rpc, gram,
// duroc) reads the tracer from here, so one attachment instruments the
// whole stack. A nil tracer (the default) disables tracing.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer.Store(t) }

// Tracer returns the attached tracer, or nil (which is itself a valid
// no-op tracer).
func (n *Network) Tracer() *trace.Tracer { return n.tracer.Load() }

// SetCounters attaches a counter registry. With a registry attached the
// network maintains per-host and per-connection message, byte, and drop
// counters; without one those paths cost nothing.
func (n *Network) SetCounters(c *trace.Counters) { n.counters.Store(c) }

// Counters returns the attached registry, or nil.
func (n *Network) Counters() *trace.Counters { return n.counters.Load() }

// SetGauges attaches a gauge registry. Layers above read it from here (as
// with Tracer and Counters) to record virtual-time level indicators such
// as queue depth and busy processors. A nil set (the default) disables
// gauges.
func (n *Network) SetGauges(g *metrics.GaugeSet) { n.gauges.Store(g) }

// Gauges returns the attached gauge registry, or nil (which is itself a
// valid no-op registry).
func (n *Network) Gauges() *metrics.GaugeSet { return n.gauges.Load() }

// SetHists attaches a histogram registry. As with Tracer/Counters/Gauges,
// every layer above reads it from here, so one attachment threads latency
// histograms through the whole stack. A nil set (the default) disables
// them; recording into a nil histogram is a no-op.
func (n *Network) SetHists(h *metrics.HistogramSet) { n.hists.Store(h) }

// Hists returns the attached histogram registry, or nil (which is itself a
// valid no-op registry).
func (n *Network) Hists() *metrics.HistogramSet { return n.hists.Load() }

// SetSamples attaches a sample-log registry: timestamped observation
// streams the SLO engine queries over sliding windows. As with the other
// registries, layers above read it from here. Nil disables it.
func (n *Network) SetSamples(s *metrics.SampleLogSet) { n.samples.Store(s) }

// Samples returns the attached sample-log registry, or nil (which is
// itself a valid no-op registry).
func (n *Network) Samples() *metrics.SampleLogSet { return n.samples.Load() }

// SetFlightRec attaches the flight recorder so any layer can freeze the
// black box at a trigger point (watchdog abort, orphan record, replica
// crash). Nil (the default) disables triggers.
func (n *Network) SetFlightRec(r *flightrec.Recorder) { n.flight.Store(r) }

// FlightRec returns the attached flight recorder, or nil (which is itself
// a valid no-op recorder).
func (n *Network) FlightRec() *flightrec.Recorder { return n.flight.Load() }

// AddHost registers a host by name. Adding an existing name returns the
// existing host.
func (n *Network) AddHost(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[name]; ok {
		return h
	}
	h := &Host{
		net:       n,
		name:      name,
		listeners: make(map[string]*Listener),
		conns:     make(map[*Conn]struct{}),
	}
	n.hosts[name] = h
	return h
}

// Host returns the named host, or nil if it was never added.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// Partition severs connectivity between hosts a and b: packets in either
// direction are silently dropped and new dials time out.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pairKey(a, b)] = true
}

// Heal restores connectivity between hosts a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pairKey(a, b))
}

// Partitioned reports whether hosts a and b are partitioned.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitions[pairKey(a, b)]
}

// deliverable reports whether a packet sent now from one host would reach
// the other, considering partitions and remote failure state.
func (n *Network) deliverable(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitions[pairKey(from, to)] {
		return false
	}
	h, ok := n.hosts[to]
	return ok && h.state == hostUp
}

// Host is a simulated machine on the network.
type Host struct {
	net   *Network
	name  string
	state hostState

	listeners map[string]*Listener
	conns     map[*Conn]struct{}
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// Up reports whether the host is neither crashed nor hung.
func (h *Host) Up() bool {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	return h.state == hostUp
}

// Crash fails the host with detectable semantics: all its connections are
// closed (peers observe ErrClosed) and its listeners stop accepting.
func (h *Host) Crash() { h.fail(hostCrashed) }

// Hang fails the host silently: connections stay open but all traffic to
// and from it is dropped, so peers observe only lack of progress.
func (h *Host) Hang() {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	if h.state == hostUp {
		h.state = hostHung
	}
}

func (h *Host) fail(to hostState) {
	h.net.mu.Lock()
	h.state = to
	conns := make([]*Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.conns = make(map[*Conn]struct{})
	listeners := make([]*Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		listeners = append(listeners, l)
	}
	h.listeners = make(map[string]*Listener)
	h.net.mu.Unlock()
	// Close in establishment order, not map order: every Close wakes the
	// connection's blocked peers, and the wake sequence must be a function
	// of the seed, not of map iteration.
	sort.Slice(conns, func(i, j int) bool { return conns[i].estSeq < conns[j].estSeq })
	sort.Slice(listeners, func(i, j int) bool { return listeners[i].service < listeners[j].service })
	for _, c := range conns {
		c.Close()
	}
	for _, l := range listeners {
		l.close(false)
	}
}

// Restore brings a hung host back. A crashed host stays down: its
// listeners and connections are gone; re-create services explicitly after
// RestoreCrashed.
func (h *Host) Restore() {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	if h.state == hostHung {
		h.state = hostUp
	}
}

// RestoreCrashed boots a crashed host back up with no listeners or
// connections.
func (h *Host) RestoreCrashed() {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	h.state = hostUp
}

// Listen registers a service listener on the host.
func (h *Host) Listen(service string) (*Listener, error) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	if h.state != hostUp {
		return nil, ErrHostDown
	}
	if _, exists := h.listeners[service]; exists {
		return nil, fmt.Errorf("transport: service %q already listening on %s", service, h.name)
	}
	l := &Listener{
		host:    h,
		service: service,
		accept:  vtime.NewChan[*Conn](h.net.sim, "accept:"+h.name+":"+service, 64),
	}
	h.listeners[service] = l
	return l, nil
}

// DialTimeout is the default timeout for Dial attempts into a partition or
// a hung host.
const DialTimeout = 30 * time.Second

// Dial opens a connection from this host to a remote service. Connection
// establishment costs one round trip. Dialing a crashed host or a missing
// service is refused after one round trip; dialing through a partition or
// into a hung host times out after DialTimeout.
func (h *Host) Dial(to Addr) (*Conn, error) { return h.DialCtx(to, trace.Ctx{}) }

// DialCtx is Dial carrying a causal span context. The context becomes the
// connection's base context: handshake traffic and any context-less sends
// on the connection inherit it, and it disambiguates the connection's flow
// identifier (see newConnPair).
func (h *Host) DialCtx(to Addr, ctx trace.Ctx) (*Conn, error) {
	n := h.net
	n.mu.Lock()
	if h.state != hostUp {
		n.mu.Unlock()
		return nil, ErrHostDown
	}
	n.mu.Unlock()

	oneWay := n.latency.Latency(h.name, to.Host)
	dialStart := n.sim.Now()
	// SYN retransmission: an unreachable peer (partition, crash, hang)
	// never answers, but the dialer keeps retrying within its timeout, so
	// a transient partition that heals mid-dial still connects.
	const synRetry = time.Second
	deadline := dialStart + DialTimeout
	for !n.deliverable(h.name, to.Host) {
		remaining := deadline - n.sim.Now()
		if remaining <= 0 {
			n.Tracer().SpanCtx(ctx.Child("dial"), "transport", "dial", h.name, to.String(), "", dialStart,
				trace.Arg{Key: "outcome", Val: "timeout"})
			return nil, ErrDialTimeout
		}
		if remaining < synRetry {
			n.sim.Sleep(remaining)
		} else {
			n.sim.Sleep(synRetry)
		}
	}
	n.sim.Sleep(oneWay) // SYN

	n.mu.Lock()
	// Re-check the local host under the same lock that registers the conn
	// pair: the host may have crashed or hung during the SYN sleep, and its
	// sweep already ran. Registering now would attach live connections to a
	// swept host — they would never be closed by a later failure.
	if h.state != hostUp {
		n.mu.Unlock()
		n.Tracer().SpanCtx(ctx.Child("dial"), "transport", "dial", h.name, to.String(), "", dialStart,
			trace.Arg{Key: "outcome", Val: "local-down"})
		return nil, ErrHostDown
	}
	remote, ok := n.hosts[to.Host]
	var l *Listener
	if ok && remote.state == hostUp {
		l = remote.listeners[to.Service]
	}
	refused := l == nil
	var client, server *Conn
	if !refused {
		client, server = newConnPair(n, Addr{h.name, "client"}, to, ctx)
		h.conns[client] = struct{}{}
		remote.conns[server] = struct{}{}
	}
	n.mu.Unlock()

	n.sim.Sleep(oneWay) // SYN-ACK
	if refused {
		n.Tracer().SpanCtx(ctx.Child("dial"), "transport", "dial", h.name, to.String(), "", dialStart,
			trace.Arg{Key: "outcome", Val: "refused"})
		return nil, ErrRefused
	}
	if !l.accept.TrySend(server) {
		// Accept backlog full: refuse.
		client.Close()
		n.Tracer().SpanCtx(ctx.Child("dial"), "transport", "dial", h.name, to.String(), "", dialStart,
			trace.Arg{Key: "outcome", Val: "backlog-full"})
		return nil, ErrRefused
	}
	n.Tracer().SpanCtx(ctx.Child("dial"), "transport", "dial", h.name, to.String(), client.flow, dialStart,
		trace.Arg{Key: "outcome", Val: "ok"})
	return client, nil
}

// Listener accepts inbound connections for one service.
type Listener struct {
	host    *Host
	service string
	accept  *vtime.Chan[*Conn]
	mu      sync.Mutex
	closed  bool
}

// Addr returns the listener's address.
func (l *Listener) Addr() Addr { return Addr{Host: l.host.name, Service: l.service} }

// Accept blocks until a connection arrives; ok is false once the listener
// is closed.
func (l *Listener) Accept() (*Conn, bool) {
	return l.accept.Recv()
}

// Close stops the listener and deregisters the service.
func (l *Listener) Close() { l.close(true) }

func (l *Listener) close(deregister bool) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	if deregister {
		l.host.net.mu.Lock()
		if l.host.listeners[l.service] == l {
			delete(l.host.listeners, l.service)
		}
		l.host.net.mu.Unlock()
	}
	l.accept.Close()
}

// pendingMsg is one coalesced send awaiting batch flush.
type pendingMsg struct {
	payload []byte
	sentAt  time.Duration
	// ctx is the causal context of the send, stamped on the matching recv
	// or drop event at the far end of the wire.
	ctx trace.Ctx
}

// outMsg is an entry in a connection's delivery pipeline: a single
// payload, a coalesced batch, or a FIN.
type outMsg struct {
	payload   []byte
	batch     []pendingMsg
	sentAt    time.Duration
	deliverAt time.Duration
	fin       bool
	ctx       trace.Ctx
}

// Conn is one end of a reliable, in-order, message-oriented connection.
type Conn struct {
	net    *Network
	estSeq uint64 // establishment order; failure sweeps close in this order
	local  Addr
	remote Addr
	in     *vtime.Chan[[]byte]
	out    *vtime.Chan[outMsg]
	peer   *Conn

	// flow identifies the connection pair (client=>server@establish-time);
	// both ends share it, so it correlates trace events across the two
	// hosts. dirFlow is this end's directional name (local->remote@t).
	flow    string
	dirFlow string
	// ctx is the base causal context the connection was dialed under;
	// both ends share it. Context-less sends inherit it.
	ctx trace.Ctx
	// Per-connection counter handles, nil when no registry is attached.
	cSend, cSendBytes, cRecv, cRecvBytes, cDrop *trace.Counter
	// Cached histogram handles (shared network-wide, not per-connection, to
	// bound cardinality), nil when no registry is attached.
	hBytes, hDelay, hBatch *metrics.Histogram

	// batch is the coalescing policy this connection was created under;
	// flushSig wakes the flusher daemon when a batch opens.
	batch    BatchOptions
	flushSig *vtime.Chan[struct{}]

	mu        sync.Mutex
	closed    bool
	pend      []pendingMsg
	pendBytes int
}

// Flow returns the connection-pair identifier shared by both ends: the
// client and server addresses plus the establishment time in microseconds.
// Layers above use it to build correlation IDs that match across hosts.
func (c *Conn) Flow() string { return c.flow }

// Network returns the network the connection runs on. Layers above use it
// to reach the attached Tracer and Counters.
func (c *Conn) Network() *Network { return c.net }

// Ctx returns the base causal context the connection was dialed under
// (zero for context-less dials). Both ends share it.
func (c *Conn) Ctx() trace.Ctx { return c.ctx }

// newConnPair builds both ends of a connection along with their delivery
// daemons. Caller holds n.mu.
//
// The flow identifier is client=>server@establish-time; two dials between
// the same host pair in the same microsecond would collide, so when a dial
// carries a causal context a short hash of it is appended — the contexts
// of simultaneous dials differ, keeping flows (and the correlation IDs
// layered on them) unique per connection.
func newConnPair(n *Network, clientAddr, serverAddr Addr, ctx trace.Ctx) (client, server *Conn) {
	ts := strconv.FormatInt(int64(n.sim.Now()/time.Microsecond), 10)
	flow := clientAddr.String() + "=>" + serverAddr.String() + "@" + ts
	if ctx.Valid() {
		h := fnv.New32a()
		h.Write([]byte(ctx.Req))
		h.Write([]byte{0})
		h.Write([]byte(ctx.Span))
		flow += "~" + strconv.FormatUint(uint64(h.Sum32()), 16)
	}
	ctrs := n.Counters()
	mk := func(local, remote Addr) *Conn {
		tag := local.String() + "->" + remote.String()
		n.connSeq++
		c := &Conn{
			net:     n,
			estSeq:  n.connSeq,
			local:   local,
			remote:  remote,
			flow:    flow,
			ctx:     ctx,
			dirFlow: tag + "@" + ts,
			in:      vtime.NewChan[[]byte](n.sim, "in:"+tag, 4096),
			out:     vtime.NewChan[outMsg](n.sim, "out:"+tag, 4096),
			batch:   n.batch,
		}
		if c.batch.enabled() {
			c.flushSig = vtime.NewChan[struct{}](n.sim, "flush:"+tag, 1)
		}
		if ctrs != nil {
			c.cSend = ctrs.C(trace.Key("transport", "conn", "send", c.dirFlow))
			c.cSendBytes = ctrs.C(trace.Key("transport", "conn", "sendbytes", c.dirFlow))
			c.cRecv = ctrs.C(trace.Key("transport", "conn", "recv", c.dirFlow))
			c.cRecvBytes = ctrs.C(trace.Key("transport", "conn", "recvbytes", c.dirFlow))
			c.cDrop = ctrs.C(trace.Key("transport", "conn", "drop", c.dirFlow))
		}
		if hs := n.Hists(); hs != nil {
			c.hBytes = hs.H("transport.msg.bytes")
			c.hDelay = hs.H("transport.msg.delay")
			if c.batch.enabled() {
				c.hBatch = hs.H("transport.batch.msgs")
			}
		}
		return c
	}
	client = mk(clientAddr, serverAddr)
	server = mk(serverAddr, clientAddr)
	client.peer = server
	server.peer = client
	n.sim.GoDaemon("deliver:"+clientAddr.String(), client.deliverLoop)
	n.sim.GoDaemon("deliver:"+serverAddr.String(), server.deliverLoop)
	if client.batch.enabled() {
		n.sim.GoDaemon("flush:"+clientAddr.String(), client.flushLoop)
		n.sim.GoDaemon("flush:"+serverAddr.String(), server.flushLoop)
	}
	return client, server
}

// deliverLoop moves messages from this end's out queue into the peer's
// inbox after the appropriate latency, preserving FIFO order.
func (c *Conn) deliverLoop() {
	for {
		m, ok := c.out.Recv()
		if !ok {
			return
		}
		c.net.sim.SleepUntil(m.deliverAt)
		if m.fin {
			c.peer.markClosed()
			return
		}
		// Reachability is evaluated once per delivery (per batch): a batch
		// crosses the wire as one unit.
		deliverable := c.net.deliverable(c.local.Host, c.remote.Host)
		if m.batch != nil {
			for _, p := range m.batch {
				c.deliver(p.payload, p.sentAt, p.ctx, deliverable)
			}
			continue
		}
		c.deliver(m.payload, m.sentAt, m.ctx, deliverable)
	}
}

// deliver lands one payload in the peer's inbox (or accounts for its
// loss), recording per-message delay, counters, and the recv trace event.
func (c *Conn) deliver(payload []byte, sentAt time.Duration, ctx trace.Ctx, deliverable bool) {
	if !deliverable {
		c.dropped(len(payload), "in-flight", ctx)
		return
	}
	if !c.peer.in.TrySend(payload) { // inbox overflow drops, like UDP under DoS
		c.dropped(len(payload), "overflow", ctx)
		return
	}
	// Enqueue-to-delivery virtual delay: wire latency plus any FIFO
	// backlog (and batch coalescing time) behind earlier messages on this
	// connection.
	c.hDelay.Record(int64(c.net.sim.Now() - sentAt))
	c.peer.cRecv.Add(1)
	c.peer.cRecvBytes.Add(int64(len(payload)))
	if ctrs := c.net.Counters(); ctrs != nil {
		ctrs.Add(trace.Key("transport", "msgs", "recv", c.remote.Host), 1)
		ctrs.Add(trace.Key("transport", "bytes", "recv", c.remote.Host), int64(len(payload)))
	}
	c.net.Tracer().InstantCtx(ctx, "transport", "recv", c.remote.Host, c.peer.dirFlow, c.flow,
		trace.Arg{Key: "bytes", Val: strconv.Itoa(len(payload))})
}

// dropped accounts for a message lost on this end's send path: the
// per-conn counter, per-host and per-reason registry counters, the
// network-wide drop gauge the SLO engine windows over, and a trace
// instant carrying the reason. "conn-closed" is excluded from the SLO
// gauge — losing a message to a connection the application itself is
// tearing down is a normal shutdown race, not wire loss.
func (c *Conn) dropped(size int, reason string, ctx trace.Ctx) {
	c.cDrop.Add(1)
	if ctrs := c.net.Counters(); ctrs != nil {
		ctrs.Add(trace.Key("transport", "msgs", "drop", c.local.Host), 1)
		ctrs.Add(trace.Key("transport", "drop", reason, c.local.Host), 1)
	}
	if reason != "conn-closed" {
		c.net.Gauges().G("transport.drops").Add(1)
	}
	c.net.Tracer().InstantCtx(ctx, "transport", "drop", c.local.Host, c.dirFlow, c.flow,
		trace.Arg{Key: "bytes", Val: strconv.Itoa(size)},
		trace.Arg{Key: "reason", Val: reason})
}

// LocalAddr returns this end's address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// Send transmits payload to the peer. It fails if the connection is closed
// or the local host is down; a partition or remote failure silently drops
// the message instead (the peer sees lack of progress, not an error).
func (c *Conn) Send(payload []byte) error { return c.SendCtx(payload, c.ctx) }

// SendCtx is Send carrying the causal context of this message: the hop
// span and the far end's recv (or drop) event are stamped into that
// request's tree. A zero context falls back to the connection's base
// context.
func (c *Conn) SendCtx(payload []byte, ctx trace.Ctx) error {
	if !ctx.Valid() {
		ctx = c.ctx
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	n := c.net
	n.mu.Lock()
	h := n.hosts[c.local.Host]
	localUp := h != nil && h.state == hostUp
	n.mu.Unlock()
	if !localUp {
		return ErrHostDown
	}
	if !n.deliverable(c.local.Host, c.remote.Host) {
		c.dropped(len(payload), "unreachable", ctx)
		return nil // silently dropped
	}
	n.msgs.Add(1)
	n.bytes.Add(int64(len(payload)))
	c.cSend.Add(1)
	c.cSendBytes.Add(int64(len(payload)))
	if ctrs := n.Counters(); ctrs != nil {
		ctrs.Add(trace.Key("transport", "msgs", "send", c.local.Host), 1)
		ctrs.Add(trace.Key("transport", "bytes", "send", c.local.Host), int64(len(payload)))
	}
	c.hBytes.Record(int64(len(payload)))
	now := n.sim.Now()
	oneWay := n.latency.Latency(c.local.Host, c.remote.Host)
	buf := make([]byte, len(payload))
	copy(buf, payload)
	if c.batch.enabled() {
		c.appendBatch(buf, ctx, now)
		return nil
	}
	// One hop span per send, covering the wire time to the peer.
	c.net.Tracer().SpanAtCtx(ctx.Child("hop"), "transport", "hop", c.local.Host, c.dirFlow, c.flow, now, now+oneWay,
		trace.Arg{Key: "bytes", Val: strconv.Itoa(len(payload))},
		trace.Arg{Key: "to", Val: c.remote.String()})
	if !c.enqueue(outMsg{payload: buf, sentAt: now, deliverAt: now + oneWay, ctx: ctx}) {
		// The delivery queue is saturated (extreme overload) or the send
		// raced with a close. Either way the message is lost here, and the
		// loss must be accounted: everything above already counted it as
		// sent, so silence would leave send-minus-recv unexplained.
		c.dropped(len(buf), "sendq-full", ctx)
	}
	return nil
}

// enqueue places m in the delivery pipeline. Data and batch entries leave
// one slot of slack so the FIN enqueued by Close always has room — that
// slack is what keeps close detectable under overload. Returns false when
// the pipeline is saturated or the connection raced with a close.
func (c *Conn) enqueue(m outMsg) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enqueueLocked(m)
}

func (c *Conn) enqueueLocked(m outMsg) bool {
	if !m.fin && c.out.Len() >= c.out.Cap()-1 {
		return false
	}
	return c.out.TrySend(m)
}

// appendBatch coalesces one send into the connection's pending batch,
// flushing inline when the batch reaches a size threshold and arming the
// flush timer when a batch opens.
func (c *Conn) appendBatch(payload []byte, ctx trace.Ctx, now time.Duration) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.dropped(len(payload), "conn-closed", ctx)
		return
	}
	first := len(c.pend) == 0
	c.pend = append(c.pend, pendingMsg{payload: payload, sentAt: now, ctx: ctx})
	c.pendBytes += len(payload)
	full := len(c.pend) >= c.batch.MaxMsgs || c.pendBytes >= c.batch.MaxBytes
	if full {
		c.flushLocked()
	}
	c.mu.Unlock()
	if first && !full {
		// Capacity 1: if the timer is already armed the signal is
		// redundant, and if the connection just closed TrySend is a no-op.
		c.flushSig.TrySend(struct{}{})
	}
}

// flushLocked moves the pending batch into the delivery pipeline as one
// unit. Caller holds c.mu; the swap-and-enqueue is atomic under it, which
// is what keeps batches in per-connection FIFO order.
func (c *Conn) flushLocked() {
	if len(c.pend) == 0 {
		return
	}
	batch := c.pend
	c.pend = nil
	c.pendBytes = 0
	n := c.net
	now := n.sim.Now()
	oneWay := n.latency.Latency(c.local.Host, c.remote.Host)
	if !c.enqueueLocked(outMsg{batch: batch, sentAt: now, deliverAt: now + oneWay}) {
		for _, p := range batch {
			c.dropped(len(p.payload), "sendq-full", p.ctx)
		}
		return
	}
	c.hBatch.Record(int64(len(batch)))
	// One hop span per coalesced message, from its send time to the
	// batch's delivery time: the span length includes the coalescing wait,
	// so traces show the latency cost of batching, not just the wire time.
	for _, p := range batch {
		c.net.Tracer().SpanAtCtx(p.ctx.Child("hop"), "transport", "hop", c.local.Host, c.dirFlow, c.flow, p.sentAt, now+oneWay,
			trace.Arg{Key: "bytes", Val: strconv.Itoa(len(p.payload))},
			trace.Arg{Key: "to", Val: c.remote.String()})
	}
}

// flushLoop is the connection's batch-flush daemon: each time a batch
// opens it sleeps the batch delay, then flushes whatever is pending.
func (c *Conn) flushLoop() {
	for {
		if _, ok := c.flushSig.Recv(); !ok {
			return
		}
		c.net.sim.Sleep(c.batch.Delay)
		c.mu.Lock()
		c.flushLocked()
		c.mu.Unlock()
	}
}

// Recv blocks until a message arrives. It returns ErrClosed once the
// connection is closed and drained.
func (c *Conn) Recv() ([]byte, error) {
	b, ok := c.in.Recv()
	if !ok {
		return nil, ErrClosed
	}
	return b, nil
}

// RecvTimeout blocks until a message arrives or d of virtual time elapses.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	b, res := c.in.RecvTimeout(d)
	switch res {
	case vtime.RecvOK:
		return b, nil
	case vtime.RecvClosed:
		return nil, ErrClosed
	default:
		return nil, ErrRecvTimeout
	}
}

// Close closes this end immediately and, after one-way latency, the peer's
// end (the peer drains buffered messages first). Closing twice is a no-op.
func (c *Conn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.flushLocked() // the last pending batch rides out ahead of the FIN
	c.mu.Unlock()

	n := c.net
	n.mu.Lock()
	if h := n.hosts[c.local.Host]; h != nil {
		delete(h.conns, c)
	}
	n.mu.Unlock()

	c.in.Close()
	deliverAt := n.sim.Now() + n.latency.Latency(c.local.Host, c.remote.Host)
	// The FIN must not be lost under overload: data sends leave one slot of
	// slack in the delivery queue (see enqueue), so this TrySend has room
	// even when the pipeline is saturated. If the slot is somehow gone, a
	// fallback daemon closes the peer directly after the wire latency — the
	// peer must observe ErrClosed, never hang until its receive timeout.
	if !c.out.TrySend(outMsg{deliverAt: deliverAt, fin: true}) {
		peer := c.peer
		n.sim.GoDaemon("fin:"+c.local.String(), func() {
			n.sim.SleepUntil(deliverAt)
			peer.markClosed()
		})
	}
	if c.flushSig != nil {
		c.flushSig.Close()
	}
	c.out.Close()
}

// markClosed closes the receive side in response to a peer FIN.
func (c *Conn) markClosed() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	n := c.net
	n.mu.Lock()
	if h := n.hosts[c.local.Host]; h != nil {
		delete(h.conns, c)
	}
	n.mu.Unlock()
	c.in.Close()
	if c.flushSig != nil {
		c.flushSig.Close()
	}
	c.out.Close()
}
