package transport

import (
	"testing"
	"time"

	"cogrid/internal/vtime"
)

// testNet builds a network with hosts a and b at 1ms one-way latency.
func testNet(t *testing.T) (*vtime.Sim, *Network, *Host, *Host) {
	t.Helper()
	sim := vtime.New()
	net := New(sim, UniformLatency(time.Millisecond))
	return sim, net, net.AddHost("a"), net.AddHost("b")
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{"host1:gram", Addr{"host1", "gram"}, false},
		{"h:svc:extra", Addr{"h", "svc:extra"}, false},
		{"nohost", Addr{}, true},
		{":svc", Addr{}, true},
		{"host:", Addr{}, true},
		{"", Addr{}, true},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseAddr(%q) error = %v, wantErr %t", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDialCostsOneRoundTrip(t *testing.T) {
	sim, _, a, b := testNet(t)
	sim.GoDaemon("server", func() {
		l, err := b.Listen("echo")
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		for {
			if _, ok := l.Accept(); !ok {
				return
			}
		}
	})
	err := sim.Run("client", func() {
		sim.Sleep(time.Millisecond) // let the server come up
		start := sim.Now()
		conn, err := a.Dial(Addr{"b", "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		if rtt := sim.Now() - start; rtt != 2*time.Millisecond {
			t.Errorf("dial took %v, want 2ms (one RTT)", rtt)
		}
		conn.Close()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSendRecvLatencyAndOrder(t *testing.T) {
	sim, _, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for i := 0; i < 3; i++ {
			msg, err := conn.Recv()
			if err != nil {
				t.Errorf("server Recv: %v", err)
				return
			}
			if want := byte('0' + i); msg[0] != want {
				t.Errorf("message %d = %q, want %q", i, msg[0], want)
			}
		}
		if got := sim.Now(); got != 3*time.Millisecond {
			// dial RTT 2ms + 1ms transfer; all three sends at t=2ms.
			t.Errorf("last message at %v, want 3ms", got)
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			if err := conn.Send([]byte{byte('0' + i)}); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		sim.Sleep(10 * time.Millisecond) // keep the connection open for delivery
		conn.Close()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDialMissingServiceRefused(t *testing.T) {
	sim, _, a, _ := testNet(t)
	err := sim.Run("client", func() {
		_, err := a.Dial(Addr{"b", "nosuch"})
		if err != ErrRefused {
			t.Errorf("Dial = %v, want ErrRefused", err)
		}
		if sim.Now() != 2*time.Millisecond {
			t.Errorf("refusal took %v, want one RTT", sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDialCrashedHostTimesOut(t *testing.T) {
	sim, _, a, b := testNet(t)
	err := sim.Run("client", func() {
		b.Crash()
		start := sim.Now()
		_, err := a.Dial(Addr{"b", "svc"})
		if err != ErrDialTimeout {
			t.Errorf("Dial = %v, want ErrDialTimeout", err)
		}
		if took := sim.Now() - start; took != DialTimeout {
			t.Errorf("dial failed after %v, want %v", took, DialTimeout)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCrashClosesPeerConnections(t *testing.T) {
	sim, _, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		for {
			if _, ok := l.Accept(); !ok {
				return
			}
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		sim.AfterFunc(5*time.Millisecond, func() { b.Crash() })
		_, err = conn.RecvTimeout(time.Minute)
		if err != ErrClosed {
			t.Errorf("Recv after crash = %v, want ErrClosed (crash is detectable)", err)
		}
		if sim.Now() >= time.Minute {
			t.Errorf("crash not detected promptly: t=%v", sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestHangDropsTrafficSilently(t *testing.T) {
	sim, _, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		for {
			if _, ok := l.Accept(); !ok {
				return
			}
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		b.Hang()
		if err := conn.Send([]byte("lost")); err != nil {
			t.Errorf("Send to hung host errored: %v (hang must be silent)", err)
		}
		_, err = conn.RecvTimeout(5 * time.Second)
		if err != ErrRecvTimeout {
			t.Errorf("Recv = %v, want ErrRecvTimeout (hang shows as lack of progress)", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestHangThenRestoreResumesDelivery(t *testing.T) {
	sim, _, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	got := vtime.NewChan[string](sim, "got", 1)
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		msg, err := conn.Recv()
		if err == nil {
			got.Send(string(msg))
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		b.Hang()
		b.Restore()
		if err := conn.Send([]byte("after")); err != nil {
			t.Errorf("Send: %v", err)
		}
		msg, _ := got.Recv()
		if msg != "after" {
			t.Errorf("delivered %q, want after", msg)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestPartitionDropsBothDirections(t *testing.T) {
	sim, net, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			if err := conn.Send(append([]byte("echo:"), msg...)); err != nil {
				return
			}
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		net.Partition("a", "b")
		if !net.Partitioned("a", "b") || !net.Partitioned("b", "a") {
			t.Error("Partitioned not symmetric")
		}
		conn.Send([]byte("x"))
		if _, err := conn.RecvTimeout(time.Second); err != ErrRecvTimeout {
			t.Errorf("Recv during partition = %v, want timeout", err)
		}
		net.Heal("a", "b")
		conn.Send([]byte("y"))
		msg, err := conn.RecvTimeout(time.Second)
		if err != nil || string(msg) != "echo:y" {
			t.Errorf("after heal got %q, %v; want echo:y", msg, err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDialThroughPartitionTimesOut(t *testing.T) {
	sim, net, a, b := testNet(t)
	if _, err := b.Listen("svc"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	err := sim.Run("client", func() {
		net.Partition("a", "b")
		_, err := a.Dial(Addr{"b", "svc"})
		if err != ErrDialTimeout {
			t.Errorf("Dial through partition = %v, want timeout", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCloseSignalsPeerAfterLatency(t *testing.T) {
	sim, _, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	closedAt := vtime.NewChan[time.Duration](sim, "closedAt", 1)
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		if _, err := conn.Recv(); err == ErrClosed {
			closedAt.Send(sim.Now())
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		closeTime := sim.Now()
		conn.Close()
		conn.Close() // idempotent
		at, _ := closedAt.Recv()
		if at != closeTime+time.Millisecond {
			t.Errorf("peer observed close at %v, want %v", at, closeTime+time.Millisecond)
		}
		if err := conn.Send([]byte("x")); err != ErrClosed {
			t.Errorf("Send after close = %v, want ErrClosed", err)
		}
		if _, err := conn.Recv(); err != ErrClosed {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSameHostZeroLatency(t *testing.T) {
	sim := vtime.New()
	net := New(sim, UniformLatency(time.Millisecond))
	a := net.AddHost("a")
	l, err := a.Listen("local")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		msg, err := conn.Recv()
		if err == nil {
			conn.Send(msg)
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"a", "local"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		conn.Send([]byte("ping"))
		if _, err := conn.Recv(); err != nil {
			t.Errorf("Recv: %v", err)
		}
		if sim.Now() != 0 {
			t.Errorf("same-host round trip advanced time to %v", sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestMatrixLatency(t *testing.T) {
	m := NewMatrixLatency(5 * time.Millisecond)
	m.Set("x", "y", 50*time.Millisecond)
	if got := m.Latency("x", "y"); got != 50*time.Millisecond {
		t.Errorf("x->y = %v, want 50ms", got)
	}
	if got := m.Latency("y", "x"); got != 50*time.Millisecond {
		t.Errorf("y->x = %v, want 50ms (symmetric)", got)
	}
	if got := m.Latency("x", "z"); got != 5*time.Millisecond {
		t.Errorf("x->z = %v, want default 5ms", got)
	}
	if got := m.Latency("x", "x"); got != 0 {
		t.Errorf("x->x = %v, want 0", got)
	}
}

func TestListenOnDownHostFails(t *testing.T) {
	sim, _, _, b := testNet(t)
	err := sim.Run("main", func() {
		b.Crash()
		if _, err := b.Listen("svc"); err != ErrHostDown {
			t.Errorf("Listen on crashed host = %v, want ErrHostDown", err)
		}
		b.RestoreCrashed()
		if _, err := b.Listen("svc"); err != nil {
			t.Errorf("Listen after restore: %v", err)
		}
		if _, err := b.Listen("svc"); err == nil {
			t.Error("duplicate Listen succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestNetworkCounters(t *testing.T) {
	sim, net, a, b := testNet(t)
	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		conn.Send([]byte("12345"))
		conn.Send([]byte("678"))
		sim.Sleep(10 * time.Millisecond)
		conn.Close()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if net.Messages() != 2 {
		t.Errorf("Messages = %d, want 2", net.Messages())
	}
	if net.Bytes() != 8 {
		t.Errorf("Bytes = %d, want 8", net.Bytes())
	}
}
