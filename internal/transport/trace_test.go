package transport

import (
	"strings"
	"testing"
	"time"

	"cogrid/internal/trace"
)

// sumPrefix totals every counter whose name starts with prefix — per-conn
// counter names embed the connection establish time, so tests match on the
// directional prefix rather than reconstructing the full key.
func sumPrefix(ctrs *trace.Counters, prefix string) int64 {
	var total int64
	for _, cv := range ctrs.Snapshot() {
		if strings.HasPrefix(cv.Name, prefix) {
			total += cv.Value
		}
	}
	return total
}

// Per-connection counters must track sends, receives, and both drop paths
// (unreachable at send time, in-flight when the partition lands mid-hop).
func TestPerConnCountersUnderDrops(t *testing.T) {
	sim, net, a, b := testNet(t)
	tr := trace.New(sim)
	ctrs := trace.NewCounters()
	net.SetTracer(tr)
	net.SetCounters(ctrs)

	l, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(Addr{"b", "svc"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		// Two delivered messages.
		conn.Send([]byte("hello"))
		conn.Send([]byte("world!"))
		sim.Sleep(10 * time.Millisecond)
		// Unreachable drop: partition is visible at send time.
		net.Partition("a", "b")
		conn.Send([]byte("xx"))
		sim.Sleep(10 * time.Millisecond)
		// In-flight drop: send passes the reachability check, then the
		// partition lands before the 1 ms hop completes.
		net.Heal("a", "b")
		conn.Send([]byte("yy"))
		net.Partition("a", "b")
		sim.Sleep(10 * time.Millisecond)
		conn.Close()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}

	// The unreachable message never reaches the wire, so send counts 3 of
	// the 4 attempts; only the first two arrive.
	clientPrefix := "transport.conn."
	checks := []struct {
		name string
		want int64
	}{
		{clientPrefix + "send@a:", 3},
		{clientPrefix + "sendbytes@a:", int64(len("hello") + len("world!") + len("yy"))},
		{clientPrefix + "drop@a:", 2},
		{clientPrefix + "recv@b:", 2},
		{clientPrefix + "recvbytes@b:", int64(len("hello") + len("world!"))},
	}
	for _, c := range checks {
		if got := sumPrefix(ctrs, c.name); got != c.want {
			t.Errorf("sum(%s*) = %d, want %d", c.name, got, c.want)
		}
	}
	if got := ctrs.Get(trace.Key("transport", "msgs", "drop", "a")); got != 2 {
		t.Errorf("transport.msgs.drop@a = %d, want 2", got)
	}

	// The trace must carry one hop span per wire send and one drop instant
	// per lost message, with distinct reasons for the two drop paths.
	hops := 0
	reasons := map[string]int{}
	for _, ev := range tr.Events() {
		if ev.Cat != "transport" {
			continue
		}
		switch ev.Name {
		case "hop":
			hops++
		case "drop":
			for _, arg := range ev.Args {
				if arg.Key == "reason" {
					reasons[arg.Val]++
				}
			}
		}
	}
	if hops != 3 {
		t.Errorf("hop spans = %d, want 3", hops)
	}
	if reasons["unreachable"] != 1 || reasons["in-flight"] != 1 {
		t.Errorf("drop reasons = %v, want one unreachable and one in-flight", reasons)
	}
}
