package dst

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/failure"
	"cogrid/internal/federation"
	"cogrid/internal/gram"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/slo"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
	"cogrid/internal/workload"
)

// RunOptions tune a single scenario execution.
type RunOptions struct {
	// Bugs is forwarded to the controller: the harness's self-test
	// injects a broken 2PC here and asserts the invariants catch it.
	Bugs core.Bugs
	// Engine selects the kernel's timer queue for the run's simulation.
	// The zero value is the production wheel; the kernel-equivalence
	// suite runs every scenario on both engines and diffs the artifacts.
	Engine vtime.TimerEngine
	// Artifacts, when non-nil, is filled with the run's observable byte
	// outputs after quiescence — the streams equivalence runs compare.
	Artifacts *Artifacts
}

// Artifacts captures one run's deterministic byte outputs: the sorted
// trace event log, every gauge resampled on a fixed cadence, and the full
// Prometheus exposition (counters + histograms + gauges). Two runs of the
// same scenario must produce these byte-for-byte identically, whatever
// timer engine, goroutine schedule, or wall-clock conditions they ran
// under.
type Artifacts struct {
	TraceJSONL []byte
	GaugeCSV   []byte
	Metrics    []byte
}

// artifactGaugeStep is the fixed resampling cadence for the gauge CSV
// artifact.
const artifactGaugeStep = 15 * time.Second

// RunResult is one scenario execution plus its invariant verdict.
type RunResult struct {
	Scenario   Scenario    `json:"scenario"`
	Violations []Violation `json:"violations,omitempty"`
	Jobs       int         `json:"jobs"`
	Committed  int         `json:"committed"`
	Aborted    int         `json:"aborted"`
	Faults     int         `json:"faults"`
	Orphans    int64       `json:"orphans"`
	// Elections, Handoffs, and Forwards summarize the federation's
	// activity across all replicas (fed driver only): election wins,
	// journal entries handed off from dead replicas, and forwarded
	// requests committed by a peer.
	Elections int64 `json:"elections,omitempty"`
	Handoffs  int64 `json:"handoffs,omitempty"`
	Forwards  int64 `json:"forwards,omitempty"`
	// Alerts counts SLO fire transitions; Dumps counts retained flight-
	// recorder dumps. Fault-free scenarios owe zero of both (an invariant).
	Alerts int           `json:"alerts,omitempty"`
	Dumps  int           `json:"dumps,omitempty"`
	End    time.Duration `json:"end"`
}

// OK reports whether the run held every invariant.
func (r RunResult) OK() bool { return len(r.Violations) == 0 }

// reapInterval paces the duroc-driver harness reaper; the broker driver
// uses the broker's own.
const reapInterval = 20 * time.Second

// reaper is the duroc driver's stand-in for the broker's orphan reaper:
// it retries unconfirmed subjob cancels until the resource manager
// answers, so the no-leaked-processors invariant is checkable in both
// driver modes.
type reaper struct {
	g  *grid.Grid
	mu sync.Mutex
	// orphans is swept in sorted key order: concurrent cancel daemons
	// record in nondeterministic order and the sweep must not leak it.
	orphans  map[string]core.Orphan
	recorded int64
	reaped   int64
}

func newReaper(g *grid.Grid) *reaper {
	return &reaper{g: g, orphans: make(map[string]core.Orphan)}
}

func (r *reaper) add(o core.Orphan) {
	key := o.Job + "/" + o.Subjob
	r.mu.Lock()
	_, known := r.orphans[key]
	r.orphans[key] = o
	if !known {
		r.recorded++
	}
	r.mu.Unlock()
	r.g.Counters.Add(trace.Key("dst", "orphan", "record", "workstation"), 1)
}

func (r *reaper) run() {
	for {
		r.g.Sim.Sleep(reapInterval)
		r.sweep()
	}
}

func (r *reaper) sweep() {
	r.mu.Lock()
	keys := make([]string, 0, len(r.orphans))
	for k := range r.orphans {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		r.mu.Lock()
		o, ok := r.orphans[k]
		r.mu.Unlock()
		if !ok || !r.reapOne(o) {
			continue
		}
		r.mu.Lock()
		delete(r.orphans, k)
		r.reaped++
		r.mu.Unlock()
		r.g.Counters.Add(trace.Key("dst", "orphan", "reaped", "workstation"), 1)
	}
}

func (r *reaper) reapOne(o core.Orphan) bool {
	cfg := r.g.ClientConfig()
	cfg.Ctx = o.Ctx.Child("reap")
	client, err := gram.Dial(r.g.Workstation, o.RM, cfg)
	if err != nil {
		return false
	}
	defer client.Close()
	// Cancellation is idempotent at the LRM, so re-cancelling a job the
	// earlier, unacknowledged attempt already killed is a safe no-op.
	return client.CancelTimeout(o.JobContact, 10*time.Second) == nil
}

func (r *reaper) counts() (recorded, reaped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded, r.reaped
}

// Run executes one scenario on a fresh grid and checks every protocol
// invariant against the post-quiescence state. Same scenario, same
// options → byte-identical RunResult.
func Run(sc Scenario, opts RunOptions) (RunResult, error) {
	if err := sc.Validate(); err != nil {
		return RunResult{}, err
	}
	res := RunResult{Scenario: sc, Jobs: len(sc.Jobs)}

	g := grid.New(grid.Options{Seed: sc.Seed, Trace: true, TimerEngine: opts.Engine})
	for _, ms := range sc.Machines {
		mode := lrm.Fork
		if ms.Batch {
			mode = lrm.Batch
		}
		m := g.AddMachine(ms.Name, ms.Procs, mode)
		if ms.Batch {
			workload.RegisterExecutable(m, "bg")
		}
	}
	g.RegisterEverywhere("app", appExecutable(sc.WorkTime))

	// The submit-side peer a partition cuts the machine off from.
	peer := "workstation"
	var b *broker.Broker
	var fed *federation.Federation
	var ctrl *core.Controller
	var rp *reaper
	if sc.Driver == DriverBroker || sc.Driver == DriverFed {
		peer = "broker0"
		if sc.Driver == DriverFed {
			peer = FedReplicaName(0)
		}
		dirHost := g.Net.AddHost("mds0")
		if _, err := mds.NewServer(dirHost, 0); err != nil {
			return RunResult{}, err
		}
		dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
		for _, ms := range sc.Machines {
			mds.Publish(g.Machine(ms.Name), dir, g.Contact(ms.Name), 31*time.Second,
				publishCounts(sc, ms.Procs)...)
		}
		ctrlCfg := core.ControllerConfig{
			Credential: g.UserCred,
			Registry:   g.Registry,
			Bugs:       opts.Bugs,
		}
		bOpts := broker.Options{
			Directory:       dir,
			QueueBound:      16,
			Workers:         3,
			CacheMaxAge:     45 * time.Second,
			RefreshInterval: 40 * time.Second,
			RetryAfter:      15 * time.Second,
		}
		var err error
		if sc.Driver == DriverFed {
			fed, err = federation.New(g.Net, ctrlCfg, federation.Options{
				Replicas:  sc.Replicas,
				Directory: dir,
				Broker:    bOpts,
			})
		} else {
			b, err = broker.New(g.Net.AddHost("broker0"), ctrlCfg, bOpts)
		}
		if err != nil {
			return RunResult{}, err
		}
	} else {
		rp = newReaper(g)
		var err error
		ctrl, err = core.NewController(g.Workstation, core.ControllerConfig{
			Credential:    g.UserCred,
			Registry:      g.Registry,
			CancelTimeout: 15 * time.Second,
			OnOrphan:      rp.add,
			Bugs:          opts.Bugs,
		})
		if err != nil {
			return RunResult{}, err
		}
	}

	// The SLO engine watches the run live, exactly as production would:
	// its daemon evaluates fault-linked objectives on a lagged horizon and
	// fires alerts (plus flight-recorder dumps) while faults are active.
	engine := slo.New(slo.Deps{
		Sim: g.Sim, Tracer: g.Tracer, Counters: g.Counters,
		Gauges: g.Gauges, Samples: g.Samples, Flight: g.Flight,
	}, sloRules(sc), slo.Options{EvalInterval: 10 * time.Second})
	engine.Start()

	plan, healBy := materializeFaults(sc.Faults, peer)
	var maxTime, lastArrival time.Duration
	for _, j := range sc.Jobs {
		if j.MaxTime > maxTime {
			maxTime = j.MaxTime
		}
		if j.At > lastArrival {
			lastArrival = j.At
		}
	}

	clientHosts := make([]*transport.Host, len(sc.Jobs))
	if sc.Driver == DriverBroker || sc.Driver == DriverFed {
		for i := range sc.Jobs {
			clientHosts[i] = g.Net.AddHost(fmt.Sprintf("client%02d", i))
		}
	}

	var mu sync.Mutex
	err := g.Sim.Run("dst-driver", func() {
		plan.Apply(g)
		// Broker-crash faults act on replica processes, not machines, so
		// the failure plan leaves them to the driver.
		for _, fs := range sc.Faults {
			if fs.Kind != "broker-crash" {
				continue
			}
			fs := fs
			r := fed.Replica(fedReplicaIndex(fs.Target))
			g.Sim.GoDaemon(fmt.Sprintf("dst-fed-crash:%s", fs.Target), func() {
				g.Sim.SleepUntil(fs.At)
				r.Crash()
				g.Sim.Sleep(fs.Dur)
				if err := r.Restart(); err != nil {
					panic(fmt.Sprintf("dst: replica %s restart: %v", fs.Target, err))
				}
			})
		}
		for _, bg := range sc.Background {
			workload.Drive(g.Sim, g.Machine(bg.Machine), "bg", []workload.Job{{
				At: bg.At, Size: bg.Size, Runtime: bg.Runtime, Limit: bg.Limit,
			}})
		}
		if rp != nil {
			g.Sim.GoDaemon("dst-reaper", rp.run)
		}
		wg := vtime.NewWaitGroup(g.Sim)
		wg.Add(len(sc.Jobs))
		for i, j := range sc.Jobs {
			i, j := i, j
			g.Sim.GoDaemon(fmt.Sprintf("dst-job%02d", i), func() {
				defer wg.Done()
				g.Sim.SleepUntil(j.At)
				committed := false
				switch sc.Driver {
				case DriverBroker:
					committed = submitBroker(clientHosts[i], b.Contact(), i, j, "")
				case DriverFed:
					// Round-robin across replicas, each request under a
					// stable idempotency key, so the at-most-once audit can
					// group every replica's tickets by request.
					r := fed.Replica(i % sc.Replicas)
					committed = submitBroker(clientHosts[i], r.BrokerContact(), i, j,
						fmt.Sprintf("req%02d", i))
				default:
					committed = submitDuroc(g, ctrl, i, j, sc.WorkTime)
				}
				mu.Lock()
				if committed {
					res.Committed++
				} else {
					res.Aborted++
				}
				mu.Unlock()
			})
		}
		wg.Wait()
		// Quiesce: every fault healed, every committed job's work done,
		// every leaked job's wall limit fired, and two reap intervals so
		// the reaper observes the healed grid.
		if now := g.Sim.Now(); now < healBy {
			g.Sim.SleepUntil(healBy)
		}
		g.Sim.Sleep(maxTime + sc.WorkTime + 2*time.Minute)
		if fed != nil {
			// Federated hand-off takes longer to settle: a crash must be
			// declared dead (missed heartbeats), its journal entries handed
			// off, and the new owner's reap sweeps must reach the machines.
			g.Sim.Sleep(3 * fed.Options().PeerReapInterval)
		}
	})
	res.End = g.Sim.Now()
	res.Faults = len(sc.Faults)

	var jobs []*core.Job
	var fedEntries []federation.Entry
	var recorded, reaped int64
	switch sc.Driver {
	case DriverBroker:
		jobs = b.Controller().Jobs()
		recorded = g.Counters.Get(trace.Key("broker", "orphan", "record", "broker0"))
		reaped = g.Counters.Get(trace.Key("broker", "orphan", "reaped", "broker0"))
	case DriverFed:
		// Audit every incarnation of every replica: a crashed process's
		// jobs still owe the 2PC safety invariants for everything they did
		// before dying.
		for _, r := range fed.Replicas() {
			for _, rb := range r.Brokers() {
				jobs = append(jobs, rb.Controller().Jobs()...)
			}
		}
		fedEntries = fed.MergedJournal()
		// Orphan accounting lives in the replicated journal here: a dead
		// replica's orphans are reaped by peers, not by their recorder.
		for _, e := range fedEntries {
			if e.Kind == federation.KindOrphan {
				recorded++
				if e.State != federation.StateOpen {
					reaped++
				}
			}
		}
		for _, cv := range g.Counters.Snapshot() {
			switch {
			case strings.HasPrefix(cv.Name, "fed.election.win@"):
				res.Elections += cv.Value
			case strings.HasPrefix(cv.Name, "fed.handoff.alloc@"),
				strings.HasPrefix(cv.Name, "fed.handoff.orphan@"),
				strings.HasPrefix(cv.Name, "fed.handoff.ticket@"):
				res.Handoffs += cv.Value
			case strings.HasPrefix(cv.Name, "fed.forward.commit@"):
				res.Forwards += cv.Value
			}
		}
	default:
		jobs = ctrl.Jobs()
		recorded, reaped = rp.counts()
	}
	res.Orphans = recorded

	engine.Stop()
	alerts := engine.Alerts()
	dumps := g.Flight.Dumps()
	res.Alerts = engine.Fires()
	res.Dumps = len(dumps)

	res.Violations = checkInvariants(observations{
		sc:          sc,
		g:           g,
		jobs:        jobs,
		fedEntries:  fedEntries,
		deadlock:    err,
		recorded:    recorded,
		reaped:      reaped,
		bugs:        opts.Bugs,
		alerts:      alerts,
		dumps:       dumps,
		dumpSkipped: g.Flight.Skipped(),
	})
	if len(res.Violations) > 0 {
		// Freeze the black box for the failing run: the dump is for the
		// human replaying the shrunk scenario, so it is taken after the
		// checks and never feeds back into them.
		g.Flight.Trigger("invariant", res.Violations[0].Invariant)
	}
	if opts.Artifacts != nil {
		if err := captureArtifacts(g, opts.Artifacts); err != nil {
			return res, err
		}
	}
	return res, nil
}

// captureArtifacts renders the run's deterministic byte outputs.
func captureArtifacts(g *grid.Grid, a *Artifacts) error {
	var buf bytes.Buffer
	if err := g.Tracer.WriteJSONL(&buf); err != nil {
		return fmt.Errorf("dst: trace artifact: %w", err)
	}
	a.TraceJSONL = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := g.Gauges.Series(artifactGaugeStep, g.Sim.Now()).WriteCSV(&buf); err != nil {
		return fmt.Errorf("dst: gauge artifact: %w", err)
	}
	a.GaugeCSV = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := g.WriteMetrics(&buf); err != nil {
		return fmt.Errorf("dst: metrics artifact: %w", err)
	}
	a.Metrics = append([]byte(nil), buf.Bytes()...)
	return nil
}

// sloRules is the standard DST objective set. Every rule is tied to a
// signal that cannot move on a fault-free run — non-shutdown transport
// drops, unreaped orphans, missing federation replicas — so the
// no-false-positive invariant holds across arbitrary random scenarios,
// while any fault that breaches an objective must alert.
func sloRules(sc Scenario) []slo.Rule {
	rules := []slo.Rule{{
		Name:     "transport-drop-storm",
		Kind:     slo.KindRateDelta,
		Metric:   "transport.drops",
		Window:   2 * time.Minute,
		Value:    1,
		Severity: "page",
	}}
	switch sc.Driver {
	case DriverBroker:
		rules = append(rules, slo.Rule{
			Name:     "broker-orphans",
			Kind:     slo.KindGaugeLevel,
			Metric:   "broker.orphans@broker0",
			Op:       ">=",
			Value:    1,
			Severity: "page",
		})
	case DriverFed:
		rules = append(rules, slo.Rule{
			Name:     "fed-replica-down",
			Kind:     slo.KindGaugeLevel,
			Metric:   "fed.live_replicas",
			Op:       "<=",
			Value:    float64(sc.Replicas) - 0.5,
			Severity: "page",
		})
	}
	return rules
}

// appExecutable is the standard instrumented application: attach to the
// DUROC runtime, check in at the barrier, compute for workTime.
func appExecutable(workTime time.Duration) lrm.ExecFunc {
	return func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 24*time.Hour); err != nil {
			return nil // aborted: exit before doing any work
		}
		if workTime > 0 {
			return p.Work(workTime, time.Second)
		}
		return nil
	}
}

// publishCounts lists the per-site process counts the MDS forecasts wait
// times for: every count a broker job might ask for, plus the machine
// size.
func publishCounts(sc Scenario, procs int) []int {
	seen := map[int]bool{procs: true}
	counts := []int{procs}
	for _, j := range sc.Jobs {
		if j.ProcsPerSite > 0 && !seen[j.ProcsPerSite] {
			seen[j.ProcsPerSite] = true
			counts = append(counts, j.ProcsPerSite)
		}
	}
	sort.Ints(counts)
	return counts
}

// materializeFaults expands fault specs into the paired onset+heal
// actions of a failure plan, and reports when the last heal lands.
func materializeFaults(faults []FaultSpec, peer string) (failure.Plan, time.Duration) {
	var plan failure.Plan
	var healBy time.Duration
	for _, f := range faults {
		end := f.At + f.Dur
		if end > healBy {
			healBy = end
		}
		switch f.Kind {
		case "hang":
			plan = append(plan,
				failure.Action{At: f.At, Kind: failure.HostHang, Target: f.Target},
				failure.Action{At: end, Kind: failure.HostRestore, Target: f.Target})
		case "slow":
			factor := f.Factor
			if factor < 1 {
				factor = 10
			}
			plan = append(plan,
				failure.Action{At: f.At, Kind: failure.MachineSlow, Target: f.Target, Factor: factor},
				failure.Action{At: end, Kind: failure.MachineSlow, Target: f.Target, Factor: 1})
		case "partition":
			plan = append(plan,
				failure.Action{At: f.At, Kind: failure.Partition, Target: peer, Target2: f.Target},
				failure.Action{At: end, Kind: failure.Heal, Target: peer, Target2: f.Target})
		case "down":
			plan = append(plan,
				failure.Action{At: f.At, Kind: failure.MachineDown, Target: f.Target},
				failure.Action{At: end, Kind: failure.MachineUp, Target: f.Target})
		case "crash":
			plan = append(plan,
				failure.Action{At: f.At, Kind: failure.HostCrash, Target: f.Target},
				failure.Action{At: end, Kind: failure.MachineRestart, Target: f.Target})
		case "revoke":
			plan = append(plan,
				failure.Action{At: f.At, Kind: failure.RevokeUser, Target: grid.DefaultUser},
				failure.Action{At: end, Kind: failure.ReinstateUser, Target: grid.DefaultUser})
		case "broker-crash":
			// Replica processes are not grid machines; the driver crashes
			// and restarts them directly. Only the heal horizon above
			// matters here.
		}
	}
	return plan.Sorted(), healBy
}

// submitDuroc drives one co-allocation through the substitution agent.
// The pool holds every machine the job does not already use, so
// interactive failures exercise substitution before dropping subjobs.
func submitDuroc(g *grid.Grid, ctrl *core.Controller, i int, j JobSpec, workTime time.Duration) bool {
	used := map[string]bool{}
	req := core.Request{}
	for _, sj := range j.Subjobs {
		used[sj.Machine] = true
		typ := core.Required
		switch sj.Type {
		case "interactive":
			typ = core.Interactive
		case "optional":
			typ = core.Optional
		}
		req.Subjobs = append(req.Subjobs, core.SubjobSpec{
			Contact:        g.Contact(sj.Machine),
			Count:          sj.Count,
			Executable:     "app",
			Type:           typ,
			MaxTime:        j.MaxTime,
			StartupTimeout: j.StartupTimeout,
		})
	}
	var pool []transport.Addr
	for _, name := range sortedMachines(g) {
		if !used[name] {
			pool = append(pool, g.Contact(name))
		}
	}
	res, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{
		Pool:              pool,
		CommitTimeout:     j.CommitTimeout,
		DropUnreplaceable: true,
		Ctx:               trace.NewRequest(fmt.Sprintf("dst/job%02d", i)),
	})
	if err != nil {
		if res.Job != nil && !res.Job.Done().IsSet() {
			res.Job.Abort("dst: agent gave up")
		}
		return false
	}
	// Wait (bounded — liveness is an invariant under test, not an
	// assumption) for the computation itself, so the driver's quiescence
	// clock starts after the last job finishes, not the last commit.
	res.Job.Done().WaitTimeout(j.MaxTime + workTime + 3*time.Minute)
	return true
}

// submitBroker drives one co-allocation through a broker endpoint — a
// standalone broker, or one federation replica (key set).
func submitBroker(host *transport.Host, addr transport.Addr, i int, j JobSpec, key string) bool {
	ctx := trace.NewRequest(host.Name())
	sim := host.Network().Sim()
	start := sim.Now()
	c, err := broker.DialCtx(host, addr, ctx)
	if err != nil {
		return false
	}
	defer c.Close()
	budget := j.CommitTimeout + j.StartupTimeout + 3*time.Minute
	reply, _, err := c.SubmitWait(broker.Request{
		Key:            key,
		Tenant:         j.Tenant,
		Sites:          j.Sites,
		ProcsPerSite:   j.ProcsPerSite,
		Executable:     "app",
		Spares:         j.Spares,
		CommitTimeout:  j.CommitTimeout,
		StartupTimeout: j.StartupTimeout,
		MaxTime:        j.MaxTime,
	}, budget, 20)
	host.Network().Tracer().SpanAtCtx(ctx, "client", "request", host.Name(), j.Tenant, "", start, sim.Now())
	return err == nil && reply.OK()
}

// sortedMachines returns the grid's machine names in deterministic order.
func sortedMachines(g *grid.Grid) []string {
	names := g.Machines()
	sort.Strings(names)
	return names
}
