package dst

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cogrid/internal/core"
)

// TestCorpusClean replays every regression scenario in testdata/. Each
// file is a shrunk reproduction of a bug the harness once caught (or a
// representative generated scenario); a violation here means a fixed bug
// has come back.
func TestCorpusClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus scenarios: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := ParseScenario(data)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestGeneratedSeedsClean sweeps a band of generated scenarios; the
// check.sh smoke gate runs a wider band through cmd/dstgrid.
func TestGeneratedSeedsClean(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		res, err := Run(Generate(seed, SmokeProfile), RunOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: violation: %s (replay: dstgrid -seed %d -smoke)", seed, v, seed)
		}
	}
}

// TestDeterminism locks the harness's reproducibility contract: the same
// seed yields a byte-identical report, for both drivers.
func TestDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 2} { // seed 7 draws duroc, seed 2 broker
		a := RunSeed(seed, SmokeProfile, RunOptions{}, 0)
		b := RunSeed(seed, SmokeProfile, RunOptions{}, 0)
		if a.JSON() != b.JSON() {
			t.Errorf("seed %d: reports differ:\n%s\n%s", seed, a.JSON(), b.JSON())
		}
	}
}

// fedProfile forces every generated scenario through the federated
// broker stack.
func fedProfile() Profile {
	p := SmokeProfile
	p.BrokerProb, p.FedProb = 1, 1
	return p
}

// TestFedGeneratedSeedsClean sweeps forced-federation scenarios — replica
// groups with crash/restart schedules on top of the usual machine faults.
// The check.sh fed-smoke gate runs a wider band through cmd/dstgrid.
func TestFedGeneratedSeedsClean(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(Generate(seed, fedProfile()), RunOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: violation: %s", seed, v)
		}
	}
}

// TestFedDeterminism: a federated run — replica crashes, elections,
// hand-offs and all — yields byte-identical audit reports per seed. Seed
// 1 draws broker-crash faults; seed 4 draws none.
func TestFedDeterminism(t *testing.T) {
	crashes := 0
	for _, seed := range []int64{1, 4} {
		sc := Generate(seed, fedProfile())
		if sc.Driver != DriverFed {
			t.Fatalf("seed %d: expected fed driver, got %s", seed, sc.Driver)
		}
		for _, f := range sc.Faults {
			if f.Kind == "broker-crash" {
				crashes++
			}
		}
		a := RunSeed(seed, fedProfile(), RunOptions{}, 0)
		b := RunSeed(seed, fedProfile(), RunOptions{}, 0)
		if a.JSON() != b.JSON() {
			t.Errorf("seed %d: reports differ:\n%s\n%s", seed, a.JSON(), b.JSON())
		}
	}
	if crashes == 0 {
		t.Error("neither seed drew a broker-crash fault; pick seeds that do")
	}
}

// TestFedCorpusKillsShardOwner: the corpus scenario that crashes the
// shard owner mid-flight (and later the leader) must actually exercise
// the machinery it regresses — an election and journal hand-offs — not
// just pass vacuously.
func TestFedCorpusKillsShardOwner(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "fed-kill-shard-owner-mid-2pc.json"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Elections == 0 {
		t.Error("no leader election despite the leader crashing")
	}
	if res.Handoffs == 0 {
		t.Error("no journal hand-off despite a replica dying with work in flight")
	}
}

// TestScenarioRoundTrip locks the replay format: a generated scenario
// survives JSON encode/decode unchanged.
func TestScenarioRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sc := Generate(seed, SmokeProfile)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v", seed, err)
		}
		back, err := ParseScenario([]byte(sc.JSON()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("seed %d: round trip changed the scenario", seed)
		}
	}
}

// TestInjectedDoubleCommitCaughtAndShrunk is the harness's self-test: a
// controller with the DoubleCommit bug must be convicted by the
// commit-votes invariant, and the shrinker must reduce the reproduction
// to a replayable minimal scenario that still convicts.
func TestInjectedDoubleCommitCaughtAndShrunk(t *testing.T) {
	opts := RunOptions{Bugs: core.Bugs{DoubleCommit: true}}
	sc := Generate(1, SmokeProfile)
	res, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == "commit-votes" {
			found = true
		}
	}
	if !found {
		t.Fatalf("double-commit bug not caught; violations: %v", res.Violations)
	}

	sr := Shrink(sc, opts, DefaultShrinkBudget)
	if len(sr.Violations) == 0 {
		t.Fatal("shrinker lost the violation")
	}
	if len(sr.Scenario.Jobs) > len(sc.Jobs) || len(sr.Scenario.Faults) > len(sc.Faults) {
		t.Fatalf("shrinker grew the scenario: %s", sr.Scenario.JSON())
	}
	if !strings.HasPrefix(sr.Replay(), "dstgrid -scenario '{") {
		t.Fatalf("bad replay line: %s", sr.Replay())
	}

	// The replay line's scenario must reproduce on its own: parse it back
	// out of the one-liner and re-run.
	js := strings.TrimSuffix(strings.TrimPrefix(sr.Replay(), "dstgrid -scenario '"), "'")
	minimal, err := ParseScenario([]byte(js))
	if err != nil {
		t.Fatalf("replay line does not parse: %v", err)
	}
	again, err := Run(minimal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Violations) == 0 {
		t.Fatal("minimal reproduction does not reproduce")
	}

	// And the same minimal scenario on the unbroken controller is clean:
	// the conviction is the bug's, not the scenario's.
	clean, err := Run(minimal, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range clean.Violations {
		t.Errorf("minimal scenario violates without the bug: %s", v)
	}
}

// TestShrinkCleanScenario: shrinking a healthy scenario is a single-run
// no-op.
func TestShrinkCleanScenario(t *testing.T) {
	sr := Shrink(Generate(3, SmokeProfile), RunOptions{}, 50)
	if len(sr.Violations) != 0 || sr.Runs != 1 {
		t.Fatalf("expected clean single-run shrink, got %d runs, violations %v", sr.Runs, sr.Violations)
	}
}
