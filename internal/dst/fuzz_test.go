package dst

import "testing"

// FuzzCoAllocate is the native-fuzzing entry point to the simulation
// harness: every fuzz input is a scenario seed, every execution audits
// the full invariant library. Run with
//
//	go test ./internal/dst -fuzz FuzzCoAllocate
//
// to hunt continuously; without -fuzz the seed corpus below runs as
// ordinary subtests.
func FuzzCoAllocate(f *testing.F) {
	for _, seed := range []int64{1, 2, 17, 18, 46, 48, 1<<40 + 7} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		res, err := Run(Generate(seed, SmokeProfile), RunOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: violation: %s (replay: dstgrid -seed %d -smoke)", seed, v, seed)
		}
	})
}
