package dst

import (
	"fmt"
	"sort"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/federation"
	"cogrid/internal/flightrec"
	"cogrid/internal/grid"
	"cogrid/internal/slo"
	"cogrid/internal/trace"
)

// Violation is one broken protocol invariant.
type Violation struct {
	// Invariant names the rule: "kernel", "commit-votes",
	// "single-decision", "required-abort", "abort-no-exec",
	// "job-quiescence", "leaked-jobs", "processor-conservation",
	// "orphan-reap", "at-most-once", "handoff-reap", "trace".
	Invariant string `json:"invariant"`
	// Job is the co-allocation id, when the violation is per-job.
	Job    string `json:"job,omitempty"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	if v.Job != "" {
		return fmt.Sprintf("%s [%s]: %s", v.Invariant, v.Job, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
}

// observations is everything the checker audits after a run: the grid
// (machines, counters, tracer), every job the controller accepted with
// its full event history, the orphan ledger, and the kernel verdict.
type observations struct {
	sc   Scenario
	g    *grid.Grid
	jobs []*core.Job
	// fedEntries is the federation's merged replicated journal (fed
	// driver only), already sorted by key.
	fedEntries []federation.Entry
	deadlock   error
	recorded   int64
	reaped     int64
	// bugs mirrors RunOptions.Bugs: a deliberately-broken protocol can
	// legitimately orphan and alert on a fault-free scenario, so the
	// no-false-positive checks stand down for self-test runs.
	bugs core.Bugs
	// alerts is the SLO engine's full alert log; dumps the flight
	// recorder's retained dumps; dumpSkipped the triggers beyond its
	// retention bound.
	alerts      []slo.Alert
	dumps       []flightrec.Dump
	dumpSkipped int64
}

// checkInvariants runs the whole library. The order of violations is
// deterministic: per-job checks walk jobs in submission order, machine
// checks walk names sorted.
func checkInvariants(o observations) []Violation {
	var v []Violation
	if o.deadlock != nil {
		// A deadlocked kernel means some protocol participant is stuck
		// forever; the post-run state below is mid-flight, so report only
		// the deadlock.
		return append(v, Violation{Invariant: "kernel", Detail: o.deadlock.Error()})
	}
	for _, j := range o.jobs {
		v = append(v, checkJob(j)...)
	}
	v = append(v, checkMachines(o)...)
	if o.recorded != o.reaped {
		v = append(v, Violation{
			Invariant: "orphan-reap",
			Detail:    fmt.Sprintf("%d orphans recorded but %d reaped", o.recorded, o.reaped),
		})
	}
	if o.sc.Driver == DriverFed {
		v = append(v, checkFederation(o)...)
	}
	v = append(v, checkTrace(o)...)
	v = append(v, checkSLO(o)...)
	return v
}

// checkSLO audits the observability plane itself.
//
// slo-false-positive: a fault-free scenario (with a correct protocol)
// must fire zero alerts and trigger zero dumps — the DST rules only watch
// signals a healthy run cannot move.
//
// slo-dump: every SLO fire freezes exactly one black box, so the count of
// slo-kind dumps equals the count of fire transitions (checkable only
// while the recorder retained every trigger).
//
// flight-dump: every retained dump's events satisfy the windowed trace
// well-formedness rules.
func checkSLO(o observations) []Violation {
	var v []Violation
	fires := 0
	for _, a := range o.alerts {
		if a.State == "fire" {
			fires++
		}
	}
	if len(o.sc.Faults) == 0 && o.bugs == (core.Bugs{}) {
		if fires > 0 {
			v = append(v, Violation{
				Invariant: "slo-false-positive",
				Detail: fmt.Sprintf("fault-free scenario fired %d alerts (first: %s %s)",
					fires, o.alerts[0].Rule, o.alerts[0].Detail),
			})
		}
		if n := len(o.dumps) + int(o.dumpSkipped); n > 0 {
			first := "(all beyond retention)"
			if len(o.dumps) > 0 {
				first = o.dumps[0].Trigger
			}
			v = append(v, Violation{
				Invariant: "slo-false-positive",
				Detail:    fmt.Sprintf("fault-free scenario triggered %d flight-recorder dumps (first: %s)", n, first),
			})
		}
	}
	if o.dumpSkipped == 0 {
		sloDumps := 0
		for _, d := range o.dumps {
			if d.Kind() == "slo" {
				sloDumps++
			}
		}
		if sloDumps != fires {
			v = append(v, Violation{
				Invariant: "slo-dump",
				Detail:    fmt.Sprintf("%d alert fires but %d slo dumps", fires, sloDumps),
			})
		}
	}
	for _, d := range o.dumps {
		if err := flightrec.Validate(d.Events); err != nil {
			v = append(v, Violation{
				Invariant: "flight-dump",
				Detail:    fmt.Sprintf("dump %s at %v: %v", d.Trigger, d.At, err),
			})
		}
	}
	return v
}

// checkFederation audits the replicated journal after a federated run.
//
// at-most-once: whatever crashed, forwarded, or was retried, each request
// key commits at most one ticket across the whole replica group — a
// second commit is a duplicate allocation of the same work.
//
// handoff-reap: no journal entry is still open at quiescence. An open
// ticket is a 2PC stuck mid-flight; an open allocation or orphan is a
// machine-side job nobody settled — a dead replica's duty that no peer
// picked up.
func checkFederation(o observations) []Violation {
	var v []Violation
	committed := map[string][]string{}
	for _, e := range o.fedEntries {
		if e.Kind == federation.KindTicket && e.Committed && e.ReqKey != "" {
			committed[e.ReqKey] = append(committed[e.ReqKey], e.Key)
		}
	}
	keys := make([]string, 0, len(committed))
	for k := range committed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if tickets := committed[k]; len(tickets) > 1 {
			v = append(v, Violation{
				Invariant: "at-most-once",
				Detail:    fmt.Sprintf("request key %s committed by %d tickets: %v", k, len(tickets), tickets),
			})
		}
	}
	for _, e := range o.fedEntries {
		if e.State == federation.StateOpen {
			v = append(v, Violation{
				Invariant: "handoff-reap",
				Detail: fmt.Sprintf("journal entry %s (%s from %s, owner %s) still open at quiescence",
					e.Key, e.Kind, e.Origin, e.Owner),
			})
		}
	}
	return v
}

// jobView is a job's history digested for the per-job checks.
type jobView struct {
	committedAt time.Duration
	committed   bool
	abortedAt   time.Duration
	aborted     bool
	doneAt      time.Duration
	done        bool
	// checkedIn and failed record the first EvCheckedIn / EvSubjobFailed
	// per subjob label.
	checkedIn map[string]time.Duration
	failed    map[string]time.Duration
}

func digest(hist []core.Event) jobView {
	w := jobView{
		checkedIn: map[string]time.Duration{},
		failed:    map[string]time.Duration{},
	}
	for _, ev := range hist {
		switch ev.Kind {
		case core.EvCommitted:
			if !w.committed {
				w.committed, w.committedAt = true, ev.At
			}
		case core.EvAborted:
			if !w.aborted {
				w.aborted, w.abortedAt = true, ev.At
			}
		case core.EvDone:
			if !w.done {
				w.done, w.doneAt = true, ev.At
			}
		case core.EvCheckedIn:
			if _, ok := w.checkedIn[ev.Label]; !ok {
				w.checkedIn[ev.Label] = ev.At
			}
		case core.EvSubjobFailed:
			if _, ok := w.failed[ev.Label]; !ok {
				w.failed[ev.Label] = ev.At
			}
		}
	}
	return w
}

func checkJob(j *core.Job) []Violation {
	var v []Violation
	bad := func(invariant, format string, args ...any) {
		v = append(v, Violation{Invariant: invariant, Job: j.ID(), Detail: fmt.Sprintf(format, args...)})
	}
	hist := j.History()
	status := j.Status()
	w := digest(hist)

	// 2PC safety, voting half: the commit decision requires unanimous
	// check-in from every participant. A subjob deleted before release is
	// out of the commitment; optional subjobs never vote.
	if w.committed {
		for _, si := range status {
			if si.Spec.Type == core.Optional || si.Status == core.SJDeleted {
				continue
			}
			at, ok := w.checkedIn[si.Spec.Label]
			if !ok || at > w.committedAt {
				bad("commit-votes", "committed at %v but %s subjob %s had not checked in",
					w.committedAt, si.Spec.Type, si.Spec.Label)
			}
			if fat, failed := w.failed[si.Spec.Label]; failed && fat < w.committedAt {
				bad("commit-votes", "committed at %v although %s subjob %s failed at %v",
					w.committedAt, si.Spec.Type, si.Spec.Label, fat)
			}
		}
	}

	// The commit decision is made at most once, and never after an abort.
	commits := 0
	for _, ev := range hist {
		if ev.Kind == core.EvCommitted {
			commits++
		}
	}
	if commits > 1 {
		bad("single-decision", "%d commit decisions", commits)
	}
	if w.committed && w.aborted && w.committedAt > w.abortedAt {
		bad("single-decision", "committed at %v after abort at %v", w.committedAt, w.abortedAt)
	}

	// A required subjob's failure terminates the whole computation. The
	// event's own Type is authoritative: substitution may rewrite the
	// label's spec after the failure.
	for _, ev := range hist {
		if ev.Kind == core.EvSubjobFailed && ev.Type == core.Required && !w.aborted {
			bad("required-abort", "required subjob %s failed but the job never aborted", ev.Label)
			break
		}
	}

	// 2PC safety, abort half: a job aborted before any commit decision
	// must not have executed — no subjob runs to completion, and every
	// subjob lands in failed or deleted.
	if w.aborted && !w.committed {
		for _, ev := range hist {
			if ev.Kind == core.EvSubjobDone {
				bad("abort-no-exec", "subjob %s ran to completion in an aborted job", ev.Label)
			}
		}
		for _, si := range status {
			if si.Status != core.SJFailed && si.Status != core.SJDeleted {
				bad("abort-no-exec", "subjob %s is %v after abort", si.Spec.Label, si.Status)
			}
		}
	}

	// Every accepted job reaches a terminal state by quiescence; a
	// co-allocation stuck mid-2PC forever is a liveness bug.
	if !j.Done().IsSet() {
		bad("job-quiescence", "job still live at quiescence")
	}
	return v
}

func checkMachines(o observations) []Violation {
	var v []Violation
	batch := map[string]bool{}
	for _, ms := range o.sc.Machines {
		batch[ms.Name] = ms.Batch
	}
	for _, name := range sortedMachines(o.g) {
		m := o.g.Machine(name)
		if n := m.LiveJobs(); n != 0 {
			v = append(v, Violation{
				Invariant: "leaked-jobs",
				Detail:    fmt.Sprintf("machine %s still runs %d jobs at quiescence", name, n),
			})
		}
		if batch[name] {
			if free, total := m.FreeProcessors(), m.Processors(); free != total {
				v = append(v, Violation{
					Invariant: "processor-conservation",
					Detail:    fmt.Sprintf("machine %s has %d of %d processors free at quiescence", name, free, total),
				})
			}
		}
	}
	return v
}

func checkTrace(o observations) []Violation {
	events := o.g.Tracer.Events()
	trace.Sort(events)
	var v []Violation
	for _, problem := range trace.Analyze(events).Check() {
		v = append(v, Violation{Invariant: "trace", Detail: problem})
	}
	return v
}
