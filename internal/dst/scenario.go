package dst

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cogrid/internal/workload"
)

// Driver selects which front end submits the scenario's co-allocations.
const (
	// DriverDuroc submits directly through a DUROC controller with the
	// substitution agent — the paper's Section 3 path.
	DriverDuroc = "duroc"
	// DriverBroker submits through the multi-tenant broker service —
	// the full GRAB/DUROC/broker stack.
	DriverBroker = "broker"
	// DriverFed submits through a federation of broker replicas —
	// sharded ownership, leader election, forwarding, and peer hand-off
	// of a crashed replica's in-flight allocations.
	DriverFed = "fed"
)

// FedReplicaName is the host name of federation replica i, matching the
// federation package's default naming. Broker-crash faults target these.
func FedReplicaName(i int) string { return fmt.Sprintf("fed%02d", i) }

// fedReplicaIndex parses a replica host name back to its index; -1 when
// the name is not a replica.
func fedReplicaIndex(name string) int {
	var i int
	if n, err := fmt.Sscanf(name, "fed%02d", &i); n != 1 || err != nil {
		return -1
	}
	return i
}

// MachineSpec is one machine in the scenario's grid.
type MachineSpec struct {
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Batch selects the metered FCFS scheduler; false is fork mode.
	Batch bool `json:"batch,omitempty"`
}

// SubjobSpec is one subjob of a duroc-driver co-allocation.
type SubjobSpec struct {
	Machine string `json:"machine"`
	Count   int    `json:"count"`
	// Type is "required", "interactive", or "optional".
	Type string `json:"type"`
}

// JobSpec is one co-allocation request. Duroc-driver jobs name their
// subjobs explicitly; broker-driver jobs ask for Sites×ProcsPerSite and
// let the broker place them.
type JobSpec struct {
	At      time.Duration `json:"at"`
	Subjobs []SubjobSpec  `json:"subjobs,omitempty"`

	Sites        int    `json:"sites,omitempty"`
	ProcsPerSite int    `json:"procs_per_site,omitempty"`
	Spares       int    `json:"spares,omitempty"`
	Tenant       string `json:"tenant,omitempty"`

	CommitTimeout  time.Duration `json:"commit_timeout"`
	StartupTimeout time.Duration `json:"startup_timeout"`
	MaxTime        time.Duration `json:"max_time"`
}

// FaultSpec is one injected fault, always paired with the action that
// heals it Dur later (crashes heal via machine restart). Every fault
// healing inside the run is what entitles the zero-leak invariants.
type FaultSpec struct {
	// Kind is one of "hang", "slow", "partition", "down", "crash",
	// "revoke", "broker-crash".
	Kind string `json:"kind"`
	// Target is the machine name; "broker-crash" targets a federation
	// replica ("fedNN") instead, and "revoke" targets the grid user and
	// leaves it empty.
	Target string        `json:"target,omitempty"`
	At     time.Duration `json:"at"`
	Dur    time.Duration `json:"dur"`
	// Factor is the slowdown multiple for "slow".
	Factor float64 `json:"factor,omitempty"`
}

// BackgroundJob is one competing single-machine batch job.
type BackgroundJob struct {
	Machine string        `json:"machine"`
	At      time.Duration `json:"at"`
	Size    int           `json:"size"`
	Runtime time.Duration `json:"runtime"`
	Limit   time.Duration `json:"limit"`
}

// Scenario is a fully explicit end-to-end test case: topology, workload,
// and fault schedule. Generate draws one from a seed; the JSON form is
// the replay and regression-corpus format, and what the shrinker edits.
type Scenario struct {
	// Seed feeds the kernel's deterministic tiebreak RNG; the scenario
	// content itself is explicit, so editing the fields does not shift
	// any other randomness.
	Seed   int64  `json:"seed"`
	Driver string `json:"driver"`
	// Replicas sizes the broker peer group for the fed driver (zero
	// otherwise).
	Replicas   int             `json:"replicas,omitempty"`
	Machines   []MachineSpec   `json:"machines"`
	WorkTime   time.Duration   `json:"work_time"`
	Jobs       []JobSpec       `json:"jobs"`
	Background []BackgroundJob `json:"background,omitempty"`
	Faults     []FaultSpec     `json:"faults,omitempty"`
}

// Validate rejects scenarios the runner cannot execute.
func (s Scenario) Validate() error {
	if s.Driver != DriverDuroc && s.Driver != DriverBroker && s.Driver != DriverFed {
		return fmt.Errorf("dst: unknown driver %q", s.Driver)
	}
	if s.Driver == DriverFed {
		if s.Replicas < 1 || s.Replicas > 16 {
			return fmt.Errorf("dst: fed driver needs 1..16 replicas, got %d", s.Replicas)
		}
	} else if s.Replicas != 0 {
		return fmt.Errorf("dst: driver %s takes no replicas", s.Driver)
	}
	if len(s.Machines) == 0 {
		return fmt.Errorf("dst: no machines")
	}
	byName := map[string]MachineSpec{}
	for _, m := range s.Machines {
		if m.Name == "" || m.Procs <= 0 {
			return fmt.Errorf("dst: bad machine spec %+v", m)
		}
		if _, dup := byName[m.Name]; dup {
			return fmt.Errorf("dst: duplicate machine %s", m.Name)
		}
		byName[m.Name] = m
	}
	for i, j := range s.Jobs {
		switch s.Driver {
		case DriverDuroc:
			if len(j.Subjobs) == 0 {
				return fmt.Errorf("dst: job %d has no subjobs", i)
			}
			for _, sj := range j.Subjobs {
				if _, ok := byName[sj.Machine]; !ok {
					return fmt.Errorf("dst: job %d references unknown machine %s", i, sj.Machine)
				}
				if sj.Count <= 0 {
					return fmt.Errorf("dst: job %d has non-positive count", i)
				}
				switch sj.Type {
				case "required", "interactive", "optional":
				default:
					return fmt.Errorf("dst: job %d has bad subjob type %q", i, sj.Type)
				}
			}
		case DriverBroker, DriverFed:
			if j.Sites <= 0 || j.ProcsPerSite <= 0 {
				return fmt.Errorf("dst: broker job %d needs sites and procs_per_site", i)
			}
		}
	}
	for _, f := range s.Faults {
		switch f.Kind {
		case "hang", "slow", "partition", "down", "crash":
			if _, ok := byName[f.Target]; !ok {
				return fmt.Errorf("dst: fault %s targets unknown machine %q", f.Kind, f.Target)
			}
		case "broker-crash":
			if s.Driver != DriverFed {
				return fmt.Errorf("dst: broker-crash fault needs the fed driver")
			}
			if i := fedReplicaIndex(f.Target); i < 0 || i >= s.Replicas {
				return fmt.Errorf("dst: broker-crash targets unknown replica %q", f.Target)
			}
		case "revoke":
		default:
			return fmt.Errorf("dst: unknown fault kind %q", f.Kind)
		}
		if f.Dur <= 0 {
			return fmt.Errorf("dst: fault %s has non-positive duration", f.Kind)
		}
	}
	for _, b := range s.Background {
		m, ok := byName[b.Machine]
		if !ok || !m.Batch {
			return fmt.Errorf("dst: background job targets non-batch machine %q", b.Machine)
		}
		if b.Size <= 0 || b.Runtime <= 0 {
			return fmt.Errorf("dst: bad background job %+v", b)
		}
	}
	return nil
}

// JSON renders the scenario in the compact one-line replay form.
func (s Scenario) JSON() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // plain struct of plain fields: cannot fail
	}
	return string(b)
}

// ParseScenario decodes the JSON replay form.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("dst: bad scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Profile bounds scenario generation.
type Profile struct {
	MaxMachines int
	MaxProcs    int
	MaxJobs     int
	MaxSubjobs  int
	MaxCount    int
	// FaultProb is the per-machine probability of one injected fault;
	// half of it again for a grid-wide credential revocation.
	FaultProb float64
	// BrokerProb is the probability the scenario exercises the broker
	// stack instead of direct DUROC submission.
	BrokerProb float64
	// FedProb is the probability a broker scenario is upgraded to a
	// federated one: a broker replica group with its own crash/restart
	// fault schedule. Drawn from a separate RNG stream so pre-federation
	// seeds keep their exact scenarios.
	FedProb float64
	// BackgroundProb is the per-batch-machine probability of a competing
	// Poisson background workload.
	BackgroundProb float64
	// Window spans the co-allocation arrivals and fault onsets.
	Window time.Duration
}

// SmokeProfile keeps scenarios small enough that hundreds of seeds run in
// seconds — the check.sh gate and the -smoke flag.
var SmokeProfile = Profile{
	MaxMachines:    4,
	MaxProcs:       8,
	MaxJobs:        3,
	MaxSubjobs:     3,
	MaxCount:       3,
	FaultProb:      0.5,
	BrokerProb:     0.35,
	FedProb:        0.4,
	BackgroundProb: 0.4,
	Window:         90 * time.Second,
}

// DefaultProfile is the full-size nightly profile.
var DefaultProfile = Profile{
	MaxMachines:    6,
	MaxProcs:       16,
	MaxJobs:        6,
	MaxSubjobs:     4,
	MaxCount:       4,
	FaultProb:      0.6,
	BrokerProb:     0.4,
	FedProb:        0.4,
	BackgroundProb: 0.6,
	Window:         3 * time.Minute,
}

var subjobTypes = []string{"required", "required", "interactive", "interactive", "optional"}

var faultKinds = []string{"hang", "slow", "partition", "down", "crash"}

// Generate draws a scenario from the seed. All randomness is consumed
// here, up front: the run itself is RNG-free apart from the kernel's
// seeded tiebreaks, so the same seed always yields the same scenario and
// the same execution.
func Generate(seed int64, p Profile) Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{Seed: seed, Driver: DriverDuroc}
	if rng.Float64() < p.BrokerProb {
		s.Driver = DriverBroker
	}

	nm := 2 + rng.Intn(p.MaxMachines-1)
	for i := 0; i < nm; i++ {
		procs := 2 + rng.Intn(p.MaxProcs-1)
		s.Machines = append(s.Machines, MachineSpec{
			Name:  fmt.Sprintf("m%02d", i),
			Procs: procs,
			Batch: rng.Float64() < 0.6,
		})
	}
	s.WorkTime = 10*time.Second + time.Duration(rng.Float64()*float64(30*time.Second))

	nj := 1 + rng.Intn(p.MaxJobs)
	at := 5 * time.Second
	for i := 0; i < nj; i++ {
		at += time.Duration(rng.Float64() * float64(p.Window) / float64(nj))
		j := JobSpec{
			At:             at,
			CommitTimeout:  90*time.Second + time.Duration(rng.Float64()*float64(time.Minute)),
			StartupTimeout: 60*time.Second + time.Duration(rng.Float64()*float64(time.Minute)),
			MaxTime:        4 * time.Minute,
		}
		if s.Driver == DriverBroker {
			j.Sites = 1 + rng.Intn(min(3, nm))
			j.ProcsPerSite = 1 + rng.Intn(p.MaxCount)
			j.Spares = rng.Intn(2)
			j.Tenant = fmt.Sprintf("t%d", rng.Intn(3))
		} else {
			ns := 1 + rng.Intn(p.MaxSubjobs)
			for k := 0; k < ns; k++ {
				m := s.Machines[rng.Intn(nm)]
				count := 1 + rng.Intn(min(p.MaxCount, m.Procs))
				j.Subjobs = append(j.Subjobs, SubjobSpec{
					Machine: m.Name,
					Count:   count,
					Type:    subjobTypes[rng.Intn(len(subjobTypes))],
				})
			}
		}
		s.Jobs = append(s.Jobs, j)
	}

	for _, m := range s.Machines {
		if !m.Batch || rng.Float64() >= p.BackgroundProb {
			continue
		}
		model := workload.Model{
			MeanInterarrival: 25 * time.Second,
			MaxSize:          max(1, m.Procs/2),
			MinRuntime:       5 * time.Second,
			MaxRuntime:       40 * time.Second,
		}
		for i, bg := range model.Generate(rng, p.Window) {
			if i >= 8 {
				break
			}
			s.Background = append(s.Background, BackgroundJob{
				Machine: m.Name,
				At:      bg.At,
				Size:    bg.Size,
				Runtime: bg.Runtime,
				Limit:   bg.Limit,
			})
		}
	}

	start := s.Jobs[0].At
	for _, m := range s.Machines {
		if rng.Float64() >= p.FaultProb {
			continue
		}
		f := FaultSpec{
			Kind:   faultKinds[rng.Intn(len(faultKinds))],
			Target: m.Name,
			At:     start + time.Duration(rng.Float64()*float64(p.Window)),
			Dur:    20*time.Second + time.Duration(rng.Float64()*float64(time.Minute)),
		}
		if f.Kind == "slow" {
			f.Factor = 10 + rng.Float64()*20
		}
		s.Faults = append(s.Faults, f)
	}
	if rng.Float64() < p.FaultProb/2 {
		s.Faults = append(s.Faults, FaultSpec{
			Kind: "revoke",
			At:   start + time.Duration(rng.Float64()*float64(p.Window)),
			Dur:  20*time.Second + time.Duration(rng.Float64()*float64(40*time.Second)),
		})
	}
	// Federation-ness comes from its own RNG stream, drawn after every
	// main-stream draw: whether or not the upgrade happens, pre-existing
	// seeds generate byte-identical base scenarios.
	frng := rand.New(rand.NewSource(seed ^ 0x5eed))
	if s.Driver == DriverBroker && frng.Float64() < p.FedProb {
		s.Driver = DriverFed
		s.Replicas = 2 + frng.Intn(3)
		// Crash (and later restart) at most Replicas-1 replicas, each a
		// distinct target, so the group always keeps a survivor to
		// inherit the dead replicas' journal entries.
		crashes := frng.Intn(s.Replicas)
		for i := 0; i < crashes; i++ {
			s.Faults = append(s.Faults, FaultSpec{
				Kind:   "broker-crash",
				Target: FedReplicaName(i),
				At:     start + time.Duration(frng.Float64()*float64(p.Window)),
				Dur:    30*time.Second + time.Duration(frng.Float64()*float64(time.Minute)),
			})
		}
	}
	sort.SliceStable(s.Faults, func(i, k int) bool { return s.Faults[i].At < s.Faults[k].At })
	return s
}
