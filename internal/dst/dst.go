// Package dst is a deterministic simulation-testing harness for the
// whole co-allocation stack, in the FoundationDB style: a single seed
// generates a complete end-to-end scenario — grid topology, machine mix,
// co-allocation workload, competing background load, and a fault
// schedule of hangs, overloads, partitions, outages, crashes, and
// credential revocations — which runs on the virtual-time kernel, so the
// execution is reproducible bit-for-bit. After every run a library of
// protocol invariants audits the final state: 2PC safety (unanimous
// votes before the commit decision, no execution after an abort), the
// required-failure abort rule, orphan reaping, leaked jobs, processor
// conservation, and causal-trace well-formedness. A violation is
// shrunk — greedily dropping faults, jobs, subjobs, and background
// load — to a minimal scenario whose JSON form replays the bug as a
// one-liner and joins the regression corpus in testdata/.
package dst

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// SeedReport is the outcome of one seed: its scenario's run, and — on
// violation — the shrunk reproduction.
type SeedReport struct {
	Seed   int64     `json:"seed"`
	Result RunResult `json:"result"`
	// Shrunk is set when the run violated an invariant and shrinking was
	// requested.
	Shrunk *ShrinkResult `json:"shrunk,omitempty"`
}

// RunSeed generates the seed's scenario and runs it; on violation, if
// shrinkBudget is non-zero, it minimizes the reproduction.
func RunSeed(seed int64, p Profile, opts RunOptions, shrinkBudget int) SeedReport {
	sc := Generate(seed, p)
	res, err := Run(sc, opts)
	if err != nil {
		// Generate only emits valid scenarios; a runner error here is a
		// harness bug and must not pass silently.
		panic(fmt.Sprintf("dst: seed %d: %v", seed, err))
	}
	rep := SeedReport{Seed: seed, Result: res}
	if len(res.Violations) > 0 && shrinkBudget != 0 {
		sr := Shrink(sc, opts, shrinkBudget)
		rep.Shrunk = &sr
	}
	return rep
}

// Text renders the report as the human-readable form the CLI prints.
func (r SeedReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %-6d %-7s machines=%d jobs=%d committed=%d aborted=%d faults=%d orphans=%d end=%v",
		r.Seed, r.Result.Scenario.Driver, len(r.Result.Scenario.Machines), r.Result.Jobs,
		r.Result.Committed, r.Result.Aborted, r.Result.Faults, r.Result.Orphans, r.Result.End)
	if r.Result.Scenario.Driver == DriverFed {
		fmt.Fprintf(&b, " replicas=%d elections=%d handoffs=%d forwards=%d",
			r.Result.Scenario.Replicas, r.Result.Elections, r.Result.Handoffs, r.Result.Forwards)
	}
	if r.Result.OK() {
		b.WriteString("  ok\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  VIOLATED\n")
	for _, v := range r.Result.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	if r.Shrunk != nil {
		fmt.Fprintf(&b, "  shrunk after %d runs to %d machines / %d jobs / %d faults; surviving violations:\n",
			r.Shrunk.Runs, len(r.Shrunk.Scenario.Machines), len(r.Shrunk.Scenario.Jobs), len(r.Shrunk.Scenario.Faults))
		for _, v := range r.Shrunk.Violations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
		fmt.Fprintf(&b, "  replay: %s\n", r.Shrunk.Replay())
		fmt.Fprintf(&b, "  replay (unshrunk): dstgrid -seed %d\n", r.Seed)
	}
	return b.String()
}

// JSON renders the report as one JSON line.
func (r SeedReport) JSON() string {
	b, err := json.Marshal(r)
	if err != nil {
		panic(err) // plain struct of plain fields: cannot fail
	}
	return string(b)
}

// Summary aggregates a batch of seed reports.
type Summary struct {
	Seeds      int     `json:"seeds"`
	Violated   []int64 `json:"violated,omitempty"`
	Jobs       int     `json:"jobs"`
	Committed  int     `json:"committed"`
	Aborted    int     `json:"aborted"`
	Faults     int     `json:"faults"`
	Violations int     `json:"violations"`
}

// Summarize folds seed reports into totals.
func Summarize(reports []SeedReport) Summary {
	s := Summary{Seeds: len(reports)}
	for _, r := range reports {
		s.Jobs += r.Result.Jobs
		s.Committed += r.Result.Committed
		s.Aborted += r.Result.Aborted
		s.Faults += r.Result.Faults
		s.Violations += len(r.Result.Violations)
		if !r.Result.OK() {
			s.Violated = append(s.Violated, r.Seed)
		}
	}
	sort.Slice(s.Violated, func(i, k int) bool { return s.Violated[i] < s.Violated[k] })
	return s
}

func (s Summary) String() string {
	status := "all invariants held"
	if len(s.Violated) > 0 {
		status = fmt.Sprintf("VIOLATIONS on seeds %v", s.Violated)
	}
	return fmt.Sprintf("dst: %d seeds, %d jobs (%d committed, %d aborted), %d faults: %s",
		s.Seeds, s.Jobs, s.Committed, s.Aborted, s.Faults, status)
}
