package dst

import "time"

// DefaultShrinkBudget caps how many re-runs a shrink may spend.
const DefaultShrinkBudget = 200

// ShrinkResult is the outcome of minimizing a failing scenario.
type ShrinkResult struct {
	// Scenario is the smallest scenario found that still violates an
	// invariant.
	Scenario Scenario `json:"scenario"`
	// Violations are the surviving scenario's violations.
	Violations []Violation `json:"violations"`
	// Runs counts scenario executions spent shrinking.
	Runs int `json:"runs"`
}

// Replay renders the minimal reproduction as a one-liner.
func (r ShrinkResult) Replay() string {
	return "dstgrid -scenario '" + r.Scenario.JSON() + "'"
}

// Shrink greedily minimizes a failing scenario: at each step it proposes
// reductions (drop background load, drop a fault, drop a job, drop a
// subjob, drop an unused machine, shrink process counts, compact the
// schedule) and keeps the first one that still violates an invariant,
// until no proposal reproduces or the run budget is spent. Greedy and
// deterministic: the same failing scenario always shrinks to the same
// minimal one.
func Shrink(sc Scenario, opts RunOptions, budget int) ShrinkResult {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	res := ShrinkResult{Scenario: sc}
	fails := func(c Scenario) []Violation {
		if res.Runs >= budget {
			return nil
		}
		res.Runs++
		r, err := Run(c, opts)
		if err != nil {
			return nil
		}
		return r.Violations
	}
	res.Violations = fails(sc)
	if len(res.Violations) == 0 {
		return res
	}
	for {
		progressed := false
		for _, cand := range reductions(res.Scenario) {
			if v := fails(cand); len(v) > 0 {
				res.Scenario, res.Violations = cand, v
				progressed = true
				break
			}
		}
		if !progressed || res.Runs >= budget {
			return res
		}
	}
}

// reductions proposes strictly smaller variants of the scenario, most
// aggressive first so the greedy loop converges in few runs.
func reductions(sc Scenario) []Scenario {
	var out []Scenario
	if len(sc.Background) > 0 {
		c := clone(sc)
		c.Background = nil
		out = append(out, c)
	}
	for i := range sc.Jobs {
		c := clone(sc)
		c.Jobs = append(c.Jobs[:i:i], c.Jobs[i+1:]...)
		if len(c.Jobs) > 0 {
			out = append(out, c)
		}
	}
	for i := range sc.Faults {
		c := clone(sc)
		c.Faults = append(c.Faults[:i:i], c.Faults[i+1:]...)
		out = append(out, c)
	}
	// Shrink the replica group, but only while no crash fault names the
	// replica being dropped — those reductions were already proposed.
	if sc.Driver == DriverFed && sc.Replicas > 1 {
		last := FedReplicaName(sc.Replicas - 1)
		targeted := false
		for _, f := range sc.Faults {
			if f.Kind == "broker-crash" && f.Target == last {
				targeted = true
				break
			}
		}
		if !targeted {
			c := clone(sc)
			c.Replicas--
			out = append(out, c)
		}
	}
	for i, j := range sc.Jobs {
		for k := range j.Subjobs {
			if len(j.Subjobs) <= 1 {
				break
			}
			c := clone(sc)
			cj := &c.Jobs[i]
			cj.Subjobs = append(cj.Subjobs[:k:k], cj.Subjobs[k+1:]...)
			out = append(out, c)
		}
		if j.Sites > 1 {
			c := clone(sc)
			c.Jobs[i].Sites--
			out = append(out, c)
		}
	}
	if c, ok := dropUnusedMachines(sc); ok {
		out = append(out, c)
	}
	for i, j := range sc.Jobs {
		for k, sj := range j.Subjobs {
			if sj.Count > 1 {
				c := clone(sc)
				c.Jobs[i].Subjobs[k].Count = 1
				out = append(out, c)
			}
		}
		if j.ProcsPerSite > 1 {
			c := clone(sc)
			c.Jobs[i].ProcsPerSite = 1
			out = append(out, c)
		}
	}
	if c, ok := compactSchedule(sc); ok {
		out = append(out, c)
	}
	return out
}

// dropUnusedMachines removes machines no subjob, fault, or background
// job references. Broker and fed scenarios keep every machine: placement
// there is the broker's choice, not the scenario's.
func dropUnusedMachines(sc Scenario) (Scenario, bool) {
	if sc.Driver != DriverDuroc {
		return sc, false
	}
	used := map[string]bool{}
	for _, j := range sc.Jobs {
		for _, sj := range j.Subjobs {
			used[sj.Machine] = true
		}
	}
	for _, f := range sc.Faults {
		if f.Target != "" {
			used[f.Target] = true
		}
	}
	for _, b := range sc.Background {
		used[b.Machine] = true
	}
	c := clone(sc)
	c.Machines = nil
	for _, m := range sc.Machines {
		if used[m.Name] {
			c.Machines = append(c.Machines, m)
		}
	}
	return c, len(c.Machines) > 0 && len(c.Machines) < len(sc.Machines)
}

// compactSchedule halves every arrival and fault onset past the first
// second, shortening the schedule without reordering it.
func compactSchedule(sc Scenario) (Scenario, bool) {
	c := clone(sc)
	changed := false
	squeeze := func(d time.Duration) time.Duration {
		if d <= time.Second {
			return d
		}
		changed = true
		return time.Second + (d-time.Second)/2
	}
	for i := range c.Jobs {
		c.Jobs[i].At = squeeze(c.Jobs[i].At)
	}
	for i := range c.Faults {
		c.Faults[i].At = squeeze(c.Faults[i].At)
	}
	for i := range c.Background {
		c.Background[i].At = squeeze(c.Background[i].At)
	}
	return c, changed
}

// clone deep-copies a scenario so reductions never alias each other.
func clone(sc Scenario) Scenario {
	c := sc
	c.Machines = append([]MachineSpec(nil), sc.Machines...)
	c.Jobs = make([]JobSpec, len(sc.Jobs))
	for i, j := range sc.Jobs {
		c.Jobs[i] = j
		c.Jobs[i].Subjobs = append([]SubjobSpec(nil), j.Subjobs...)
	}
	c.Background = append([]BackgroundJob(nil), sc.Background...)
	c.Faults = append([]FaultSpec(nil), sc.Faults...)
	return c
}
