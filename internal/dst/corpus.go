package dst

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// NamedScenario pairs a regression scenario with its corpus file name.
type NamedScenario struct {
	Name     string
	Scenario Scenario
}

// RegressionScenarios loads the shrunk regression corpus from this
// package's testdata directory, resolved relative to this source file so
// suites in other packages (the kernel-equivalence tests live next to the
// engine they lock down, in internal/vtime) can replay the exact
// interleavings that once broke the system. Results are sorted by name.
func RegressionScenarios() ([]NamedScenario, error) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return nil, fmt.Errorf("dst: cannot locate package source directory")
	}
	files, err := filepath.Glob(filepath.Join(filepath.Dir(self), "testdata", "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	out := make([]NamedScenario, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		sc, err := ParseScenario(data)
		if err != nil {
			return nil, fmt.Errorf("dst: corpus %s: %w", filepath.Base(f), err)
		}
		out = append(out, NamedScenario{Name: filepath.Base(f), Scenario: sc})
	}
	return out, nil
}
