package slo

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"cogrid/internal/flightrec"
	"cogrid/internal/metrics"
	"cogrid/internal/trace"
	"cogrid/internal/vtime"
)

type rig struct {
	sim     *vtime.Sim
	tracer  *trace.Tracer
	ctrs    *trace.Counters
	gauges  *metrics.GaugeSet
	samples *metrics.SampleLogSet
	flight  *flightrec.Recorder
}

func newRig(seed int64) rig {
	sim := vtime.NewSeeded(seed)
	r := rig{
		sim:     sim,
		tracer:  trace.New(sim),
		ctrs:    trace.NewCounters(),
		gauges:  metrics.NewGaugeSet(sim),
		samples: metrics.NewSampleLogSet(sim),
		flight:  flightrec.New(sim, flightrec.Options{}),
	}
	r.tracer.SetTap(r.flight)
	r.flight.SetCounters(r.ctrs)
	return r
}

func (r rig) deps() Deps {
	return Deps{Sim: r.sim, Tracer: r.tracer, Counters: r.ctrs,
		Gauges: r.gauges, Samples: r.samples, Flight: r.flight}
}

func TestBurnRateFiresAndResolves(t *testing.T) {
	r := newRig(1)
	e := New(r.deps(), []Rule{{
		Name: "lat", Kind: KindBurnRate, Metric: "svc.latency", Severity: "page",
		Threshold: 100 * time.Millisecond, Budget: 0.25, Window: time.Minute, MinCount: 4,
	}}, Options{EvalInterval: 10 * time.Second})
	e.Start()
	err := r.sim.Run("main", func() {
		log := r.samples.L("svc.latency")
		// Healthy first minute: fast samples only.
		for i := 0; i < 6; i++ {
			r.sim.Sleep(10 * time.Second)
			log.Record(int64(10 * time.Millisecond))
		}
		// Then a breach: every sample blows the threshold.
		for i := 0; i < 8; i++ {
			r.sim.Sleep(10 * time.Second)
			log.Record(int64(time.Second))
		}
		// Then recovery: the bad samples age out of the window.
		for i := 0; i < 12; i++ {
			r.sim.Sleep(10 * time.Second)
			log.Record(int64(10 * time.Millisecond))
		}
		r.sim.Sleep(time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	e.Stop()
	alerts := e.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("want fire+resolve, got %+v", alerts)
	}
	if alerts[0].State != "fire" || alerts[1].State != "resolve" || alerts[0].Rule != "lat" {
		t.Fatalf("unexpected transitions: %+v", alerts)
	}
	if alerts[0].Value < 1 {
		t.Fatalf("fire burn multiple %g < 1", alerts[0].Value)
	}
	if got := r.ctrs.Get("slo.alert.fire@lat"); got != 1 {
		t.Fatalf("fire counter: %d", got)
	}
	if got := r.ctrs.Get("slo.alert.resolve@lat"); got != 1 {
		t.Fatalf("resolve counter: %d", got)
	}
	if got := r.gauges.G("slo.alerts.active").Value(r.sim.Now()); got != 0 {
		t.Fatalf("active gauge after resolve: %g", got)
	}
	// Each fire froze exactly one black box.
	dumps := r.flight.Dumps()
	if len(dumps) != 1 || dumps[0].Kind() != "slo" {
		t.Fatalf("dumps: %+v", dumps)
	}
}

func TestGaugeLevelHoldFor(t *testing.T) {
	r := newRig(1)
	e := New(r.deps(), []Rule{{
		Name: "deep-queue", Kind: KindGaugeLevel, Metric: "q.depth",
		Op: ">=", Value: 5, HoldFor: 30 * time.Second, Severity: "warn",
	}}, Options{EvalInterval: 10 * time.Second})
	e.Start()
	err := r.sim.Run("main", func() {
		g := r.gauges.G("q.depth")
		g.Add(6) // breach level from t=0...
		r.sim.Sleep(25 * time.Second)
		g.Add(-6) // ...but clears before HoldFor: no alert
		r.sim.Sleep(time.Minute)
		g.Add(6) // breach again, held past HoldFor: fires
		r.sim.Sleep(2 * time.Minute)
		g.Add(-6)
		r.sim.Sleep(time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	e.Stop()
	alerts := e.Alerts()
	if len(alerts) != 2 || alerts[0].State != "fire" || alerts[1].State != "resolve" {
		t.Fatalf("want one fire+resolve (blip suppressed), got %+v", alerts)
	}
	if alerts[0].At < (25+60+30)*time.Second {
		t.Fatalf("fired before HoldFor elapsed: %+v", alerts[0])
	}
}

func TestRateDeltaWindow(t *testing.T) {
	r := newRig(1)
	e := New(r.deps(), []Rule{{
		Name: "drop-storm", Kind: KindRateDelta, Metric: "drops",
		Window: time.Minute, Value: 3, Severity: "page",
	}}, Options{EvalInterval: 10 * time.Second})
	e.Start()
	err := r.sim.Run("main", func() {
		g := r.gauges.G("drops")
		r.sim.Sleep(30 * time.Second)
		g.Add(2) // below the firing delta
		r.sim.Sleep(2 * time.Minute)
		g.Add(4) // storm: fires, then resolves as the window slides past
		r.sim.Sleep(3 * time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	e.Stop()
	alerts := e.Alerts()
	if len(alerts) != 2 || alerts[0].State != "fire" || alerts[1].State != "resolve" {
		t.Fatalf("want fire+resolve, got %+v", alerts)
	}
	if alerts[0].Value != 4 {
		t.Fatalf("fire delta: %g", alerts[0].Value)
	}
}

// TestAlertTraceEventsAreWellFormedDaemonTrees pins the causal-analysis
// contract: alert instants carry a request context (so coverage counts
// them) rooted as daemon trees (so per-tree checks skip them).
func TestAlertTraceEventsAreWellFormed(t *testing.T) {
	r := newRig(1)
	e := New(r.deps(), []Rule{{
		Name: "lvl", Kind: KindGaugeLevel, Metric: "g", Op: ">=", Value: 1,
	}}, Options{EvalInterval: 10 * time.Second})
	e.Start()
	err := r.sim.Run("main", func() {
		r.gauges.G("g").Add(1)
		r.sim.Sleep(time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	e.Stop()
	events := r.tracer.Events()
	trace.Sort(events)
	var alertEvents int
	for _, ev := range events {
		if ev.Cat != "slo" {
			continue
		}
		alertEvents++
		if ev.Req != "slo@lvl" || !strings.HasPrefix(ev.Span, "req/") {
			t.Fatalf("alert event not in a daemon tree: %+v", ev)
		}
	}
	if alertEvents == 0 {
		t.Fatal("no alert trace events emitted")
	}
	if problems := trace.Analyze(events).Check(); len(problems) > 0 {
		t.Fatalf("causal check rejects alert events: %v", problems)
	}
}

// runDeterminismWorkload drives a mixed rule set over racy concurrent
// writers and returns the serialized alert log.
func runDeterminismWorkload(t *testing.T, seed int64) []byte {
	t.Helper()
	r := newRig(seed)
	e := New(r.deps(), []Rule{
		{Name: "lat", Kind: KindBurnRate, Metric: "svc.latency",
			Threshold: 50 * time.Millisecond, Budget: 0.3, Window: time.Minute, MinCount: 2},
		{Name: "drops", Kind: KindRateDelta, Metric: "drops", Window: time.Minute, Value: 2},
	}, Options{EvalInterval: 10 * time.Second})
	e.Start()
	err := r.sim.Run("main", func() {
		wg := vtime.NewWaitGroup(r.sim)
		wg.Add(4)
		for p := 0; p < 4; p++ {
			p := p
			r.sim.Go(fmt.Sprintf("w%d", p), func() {
				defer wg.Done()
				for i := 1; i <= 30; i++ {
					r.sim.SleepUntil(time.Duration(i) * 10 * time.Second)
					// All four writers hit the same instants concurrently.
					lat := 10 * time.Millisecond
					if i > 10 && i < 20 {
						lat = time.Second
					}
					r.samples.L("svc.latency").Record(int64(lat))
					if i == 15 {
						r.gauges.G("drops").Add(1)
					}
				}
			})
		}
		wg.Wait()
		r.sim.Sleep(2 * time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	e.Stop()
	var buf bytes.Buffer
	if err := e.WriteLog(&buf); err != nil {
		t.Fatalf("write log: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("workload fired no alerts")
	}
	return buf.Bytes()
}

// TestAlertLogDeterministic pins byte-identical alert logs for identical
// runs despite same-instant writer races (run under -race in CI).
func TestAlertLogDeterministic(t *testing.T) {
	a := runDeterminismWorkload(t, 3)
	b := runDeterminismWorkload(t, 3)
	if !bytes.Equal(a, b) {
		t.Fatalf("alert logs differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

func TestBurnRateMinCountSuppresses(t *testing.T) {
	r := newRig(1)
	e := New(r.deps(), []Rule{{
		Name: "lat", Kind: KindBurnRate, Metric: "svc.latency",
		Threshold: time.Millisecond, Budget: 0.1, Window: time.Minute, MinCount: 5,
	}}, Options{EvalInterval: 10 * time.Second})
	e.Start()
	err := r.sim.Run("main", func() {
		// Two terrible samples — but below MinCount, so no alert.
		r.sim.Sleep(15 * time.Second)
		r.samples.L("svc.latency").Record(int64(time.Hour))
		r.samples.L("svc.latency").Record(int64(time.Hour))
		r.sim.Sleep(2 * time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	e.Stop()
	if got := e.Alerts(); len(got) != 0 {
		t.Fatalf("tiny-n alert fired: %+v", got)
	}
}

func TestStringAndActiveRules(t *testing.T) {
	r := newRig(1)
	e := New(r.deps(), []Rule{
		{Name: "a", Kind: KindGaugeLevel, Metric: "g", Op: ">=", Value: 1, Severity: "page"},
	}, Options{EvalInterval: 10 * time.Second})
	if e.String() != "none" {
		t.Fatalf("idle engine: %q", e.String())
	}
	e.Start()
	err := r.sim.Run("main", func() {
		r.gauges.G("g").Add(2)
		r.sim.Sleep(time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	e.Stop()
	if e.ActiveCount() != 1 || e.String() != "a" {
		t.Fatalf("active=%d string=%q", e.ActiveCount(), e.String())
	}
}
