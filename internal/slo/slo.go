// Package slo is the alerting half of the observability stack: a rule
// engine that evaluates windowed service-level objectives over the
// virtual-time metric streams — burn rates over latency sample logs,
// gauge levels held over time, windowed deltas over drop gauges — and
// fires edge-triggered alerts while the run is still in flight.
//
// Alerts are first-class observability objects: each fire/resolve is a
// trace event (rooted in its own "slo@<rule>" daemon tree so causal
// analysis sees it), a counter (so Prometheus exposition exports it), a
// line in the engine's deterministic alert log, and — on fire — a flight
// recorder trigger freezing the black box of the moments before the
// breach.
//
// # Determinism
//
// Every rule is evaluated at a lagged horizon h = now - Lag rather than
// at the wake instant. Virtual time only advances when every simulated
// process is blocked, so once the clock passes h the set of gauge deltas
// and samples stamped at or before h is final: evaluating at h reads
// settled history, never racing writers. With Lag of at least one eval
// tick, two same-seed runs therefore produce byte-identical alert logs —
// the property the DST determinism tests pin down.
package slo

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"cogrid/internal/flightrec"
	"cogrid/internal/metrics"
	"cogrid/internal/trace"
	"cogrid/internal/vtime"
)

// Kind selects a rule's evaluation strategy.
type Kind string

const (
	// KindBurnRate treats samples above Threshold as error-budget burn:
	// the rule breaches when the bad fraction over Window reaches
	// Budget*Burn (and, when ShortWindow is set, also over ShortWindow —
	// the classic two-window burn-rate alert that ignores stale burn).
	KindBurnRate Kind = "burn-rate"
	// KindGaugeLevel breaches when gauge Metric compares true against
	// Value under Op continuously for HoldFor.
	KindGaugeLevel Kind = "gauge-level"
	// KindRateDelta breaches when gauge Metric's net change over the
	// trailing Window is at least Value.
	KindRateDelta Kind = "rate-delta"
)

// Rule is one windowed objective.
type Rule struct {
	// Name identifies the rule in alerts, counters, and trace events.
	Name string
	// Kind selects the evaluation strategy.
	Kind Kind
	// Metric names the sample log (burn-rate) or gauge (level, delta).
	Metric string
	// Severity is a label carried on alerts ("page", "warn").
	Severity string

	// Threshold marks a burn-rate sample bad when it exceeds this value
	// (sample logs store int64; latency logs store nanoseconds).
	Threshold time.Duration
	// Budget is the tolerated bad fraction (e.g. 0.25).
	Budget float64
	// Burn is the budget multiplier that fires (default 1).
	Burn float64
	// Window is the evaluation lookback.
	Window time.Duration
	// ShortWindow, when set, must also burn for the rule to breach.
	ShortWindow time.Duration
	// MinCount suppresses burn-rate evaluation below this many samples
	// in Window (default 1), guarding tiny-n noise.
	MinCount int

	// Op compares the gauge level: ">=" or "<=".
	Op string
	// Value is the level threshold (gauge-level) or the windowed delta
	// that fires (rate-delta).
	Value float64
	// HoldFor requires the level breach to persist this long before
	// firing (zero fires immediately).
	HoldFor time.Duration
}

// Alert is one edge transition of a rule.
type Alert struct {
	// At is the evaluation horizon the transition was observed at.
	At time.Duration `json:"at_ns"`
	// Rule names the rule.
	Rule string `json:"rule"`
	// Severity mirrors the rule's severity label.
	Severity string `json:"severity"`
	// State is "fire" or "resolve".
	State string `json:"state"`
	// Value is the measured quantity at the transition (burn multiple,
	// gauge level, or windowed delta).
	Value float64 `json:"value"`
	// Detail is deterministic human-readable context.
	Detail string `json:"detail"`
}

// Options configures the engine. Zero values select the defaults.
type Options struct {
	// EvalInterval is the wake cadence (default 5s).
	EvalInterval time.Duration
	// Lag is subtracted from the wake time to form the evaluation
	// horizon (default EvalInterval). Must be >= one tick for the
	// determinism guarantee; fill enforces the floor.
	Lag time.Duration
}

func (o *Options) fill() {
	if o.EvalInterval <= 0 {
		o.EvalInterval = 5 * time.Second
	}
	if o.Lag < o.EvalInterval {
		o.Lag = o.EvalInterval
	}
}

// Deps wires the engine to a run's observability registries. Tracer,
// Counters, Gauges and Flight may be nil (each output degrades to a
// no-op); Samples may be nil only if no burn-rate rule is used.
type Deps struct {
	Sim      *vtime.Sim
	Tracer   *trace.Tracer
	Counters *trace.Counters
	Gauges   *metrics.GaugeSet
	Samples  *metrics.SampleLogSet
	Flight   *flightrec.Recorder
}

type ruleState struct {
	active   bool
	badSince time.Duration // first horizon the level was bad; -1 when good
	ctx      trace.Ctx
}

// Engine evaluates rules on a virtual-time cadence. Create with New,
// start with Start, stop with Stop.
type Engine struct {
	deps  Deps
	rules []Rule
	opts  Options
	stop  *vtime.Event

	mu     sync.Mutex
	states []ruleState
	alerts []Alert
	evals  int64
}

// New creates an engine over deps evaluating rules.
func New(deps Deps, rules []Rule, opts Options) *Engine {
	opts.fill()
	e := &Engine{deps: deps, rules: rules, opts: opts,
		stop:   vtime.NewEvent(deps.Sim, "slo-engine-stop"),
		states: make([]ruleState, len(rules))}
	for i, r := range rules {
		e.states[i].badSince = -1
		e.states[i].ctx = trace.NewRequest("slo@" + r.Name).Child("alert")
	}
	return e
}

// Start launches the evaluation daemon. Call once.
func (e *Engine) Start() {
	e.deps.Sim.GoDaemon("slo-engine", func() {
		for {
			if e.stop.WaitTimeout(e.opts.EvalInterval) {
				return
			}
			e.evaluate(e.deps.Sim.Now())
		}
	})
}

// Stop halts the daemon after its current tick.
func (e *Engine) Stop() { e.stop.Set() }

// EvaluateAt runs one evaluation pass at horizon h. The daemon calls this
// on its cadence; tests and replay tools may call it directly for any
// horizon the virtual clock has passed.
func (e *Engine) EvaluateAt(h time.Duration) {
	if h < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	for i := range e.rules {
		e.evalRule(i, h)
	}
}

func (e *Engine) evaluate(now time.Duration) {
	e.EvaluateAt(now - e.opts.Lag)
}

// evalRule evaluates rule i at horizon h and records any edge transition.
// Caller holds e.mu.
func (e *Engine) evalRule(i int, h time.Duration) {
	r := e.rules[i]
	st := &e.states[i]
	var breach bool
	var value float64
	var detail string
	switch r.Kind {
	case KindBurnRate:
		breach, value, detail = e.evalBurn(r, h)
	case KindGaugeLevel:
		level := e.deps.Gauges.G(r.Metric).Value(h)
		bad := compare(level, r.Op, r.Value)
		if bad {
			if st.badSince < 0 {
				st.badSince = h
			}
			breach = h-st.badSince >= r.HoldFor
		} else {
			st.badSince = -1
		}
		value = level
		detail = fmt.Sprintf("level=%g %s %g", level, r.Op, r.Value)
	case KindRateDelta:
		d := e.deps.Gauges.G(r.Metric).DeltaBetween(h-r.Window, h)
		breach = d >= r.Value
		value = d
		detail = fmt.Sprintf("delta=%g over %s (fires at %g)", d, r.Window, r.Value)
	}
	if breach == st.active {
		return
	}
	st.active = breach
	state := "resolve"
	if breach {
		state = "fire"
	}
	al := Alert{At: h, Rule: r.Name, Severity: r.Severity, State: state, Value: value, Detail: detail}
	e.alerts = append(e.alerts, al)
	e.deps.Counters.Add(trace.Key("slo", "alert", state, r.Name), 1)
	if breach {
		e.deps.Gauges.G("slo.alerts.active").Add(1)
	} else {
		e.deps.Gauges.G("slo.alerts.active").Add(-1)
	}
	e.deps.Tracer.InstantCtx(st.ctx, "slo", state, "slo-engine", r.Name, "",
		trace.Arg{Key: "value", Val: fmt.Sprintf("%g", value)},
		trace.Arg{Key: "detail", Val: detail})
	if breach {
		e.deps.Flight.Trigger("slo:"+r.Name, detail)
	}
}

func (e *Engine) evalBurn(r Rule, h time.Duration) (bool, float64, string) {
	minCount := r.MinCount
	if minCount <= 0 {
		minCount = 1
	}
	burnAt := r.Burn
	if burnAt <= 0 {
		burnAt = 1
	}
	log := e.deps.Samples.L(r.Metric)
	long := log.Window(h-r.Window, h)
	n := long.Count()
	if n < minCount {
		return false, 0, fmt.Sprintf("burn=0 n=%d<min %d", n, minCount)
	}
	bad := long.CountAbove(int64(r.Threshold))
	burn := float64(bad) / float64(n) / r.Budget
	breach := burn >= burnAt
	if breach && r.ShortWindow > 0 {
		// Two-window rule: recent traffic must still be burning, so a
		// long-resolved spike cannot keep the alert pinned.
		short := log.Window(h-r.ShortWindow, h)
		sn := short.Count()
		if sn < minCount {
			breach = false
		} else if float64(short.CountAbove(int64(r.Threshold)))/float64(sn)/r.Budget < burnAt {
			breach = false
		}
	}
	return breach, burn, fmt.Sprintf("burn=%.3f bad=%d/%d over %s (>%s, budget %g)",
		burn, bad, n, r.Window, r.Threshold, r.Budget)
}

func compare(v float64, op string, bound float64) bool {
	switch op {
	case "<=":
		return v <= bound
	default: // ">=" is the default comparison
		return v >= bound
	}
}

// Alerts returns a copy of the alert log in firing order — deterministic
// because only the single engine daemon appends.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, len(e.alerts))
	copy(out, e.alerts)
	return out
}

// Fires returns how many fire transitions were recorded.
func (e *Engine) Fires() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, a := range e.alerts {
		if a.State == "fire" {
			n++
		}
	}
	return n
}

// ActiveCount returns how many rules are currently breaching.
func (e *Engine) ActiveCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, st := range e.states {
		if st.active {
			n++
		}
	}
	return n
}

// ActiveRules returns the names of currently-breaching rules, in rule
// declaration order.
func (e *Engine) ActiveRules() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for i, st := range e.states {
		if st.active {
			out = append(out, e.rules[i].Name)
		}
	}
	return out
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// WriteLog writes the alert log as JSONL, one alert per line, in firing
// order — byte-identical across same-seed runs.
func (e *Engine) WriteLog(w io.Writer) error {
	for _, a := range e.Alerts() {
		if _, err := fmt.Fprintf(w, `{"at_ns":%d,"rule":%q,"severity":%q,"state":%q,"value":%g,"detail":%q}`+"\n",
			int64(a.At), a.Rule, a.Severity, a.State, a.Value, a.Detail); err != nil {
			return err
		}
	}
	return nil
}

// String renders active alerts for dashboards: "rule(severity)" joined by
// commas, or "none".
func (e *Engine) String() string {
	active := e.ActiveRules()
	if len(active) == 0 {
		return "none"
	}
	return strings.Join(active, ",")
}
