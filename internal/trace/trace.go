// Package trace provides the observability substrate for the co-allocation
// stack: a deterministic, virtual-time-stamped structured event layer and a
// lock-cheap counter registry.
//
// Every layer of the stack emits typed events through a shared *Tracer —
// transport message hops, RPC call/reply pairs, GRAM job state transitions,
// DUROC subjob lifecycle and commit phases — so one co-allocation run can be
// decomposed span-by-span, exactly the per-layer latency attribution the
// paper's Figures 2-5 perform by hand.
//
// All Tracer and Counters methods are nil-safe: a nil *Tracer (the default
// everywhere) records nothing and costs nothing, so untraced paths stay
// zero-cost. Because simulated processes may run concurrently within one
// virtual instant, events are kept unordered internally and sorted by a
// total deterministic order on export: two runs with the same seed produce
// byte-identical traces.
package trace

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cogrid/internal/vtime"
)

// Arg is one key/value annotation on an event.
type Arg struct {
	Key string
	Val string
}

// Event is a single structured trace event. Dur == 0 makes it an instant;
// Dur > 0 makes it a complete span [At, At+Dur).
type Event struct {
	// At is the virtual time of the event (span start for spans).
	At time.Duration
	// Dur is the span length; zero for instant events.
	Dur time.Duration
	// Cat is the emitting layer: "transport", "rpc", "gram", "duroc",
	// "phase" (PhaseRecorder shim), or an application-chosen category.
	Cat string
	// Name identifies the event within its category, e.g. "hop",
	// "call:submit", "state:active", "commit".
	Name string
	// Proc is the process track (usually a host or actor name).
	Proc string
	// Thr is the thread track within Proc (a connection flow, a service
	// name, or a job/subjob label).
	Thr string
	// ID is an optional correlation identifier shared by related events,
	// e.g. an RPC call and its reply processing on the server.
	ID string
	// Req is the causal request id this event belongs to (empty for
	// events outside any request tree).
	Req string
	// Span is the event's position in the request's causal tree: a
	// "/"-separated path from the root ("req"), e.g.
	// "req/call:submit#1/serve/attempt1/sj:site00/submit". The parent
	// span is the longest proper path prefix that names another span.
	Span string
	// Args are optional annotations.
	Args []Arg
}

// Ctx is a propagated span context: the request id plus the causal path of
// the current span. It is carried through RPC envelopes and transport
// message metadata so every layer stamps its events into the same request
// tree. The zero Ctx is "untraced": Child on it stays zero and events keep
// empty Req/Span.
type Ctx struct {
	Req  string
	Span string
}

// NewRequest roots a fresh causal tree for request id. The root span path
// is always "req" so analyzers can find the request root by name.
func NewRequest(id string) Ctx { return Ctx{Req: id, Span: "req"} }

// Valid reports whether the context belongs to a request tree.
func (c Ctx) Valid() bool { return c.Req != "" }

// Child derives the context for a sub-span named seg. Deriving from the
// zero Ctx yields the zero Ctx, so untraced paths propagate nothing.
func (c Ctx) Child(seg string) Ctx {
	if c.Req == "" {
		return Ctx{}
	}
	if c.Span == "" {
		return Ctx{Req: c.Req, Span: seg}
	}
	return Ctx{Req: c.Req, Span: c.Span + "/" + seg}
}

// Seg sanitizes s for use as a span path segment: "/" is the path
// separator, so embedded slashes (job ids, subjob labels) become "_".
func Seg(s string) string { return strings.ReplaceAll(s, "/", "_") }

// String encodes the context for out-of-band carriers (e.g. an environment
// variable handed to a spawned process). ParseCtx inverts it.
func (c Ctx) String() string { return c.Req + "|" + c.Span }

// ParseCtx decodes a Ctx produced by String. Malformed or empty input
// yields the zero Ctx.
func ParseCtx(s string) Ctx {
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return Ctx{}
	}
	return Ctx{Req: s[:i], Span: s[i+1:]}
}

// Tap observes every event the tracer records, synchronously on the
// emitting goroutine. A tap must be cheap and must not call back into the
// tracer. The flight recorder is the canonical tap: it mirrors the live
// event stream into bounded ring buffers without growing the trace.
type Tap interface {
	Record(Event)
}

// Tracer records events in virtual time. The zero value is not usable;
// create with New. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	sim    *vtime.Sim
	tap    atomic.Pointer[Tap]
	mu     sync.Mutex
	events []Event
}

// New creates a tracer stamping events with sim's virtual clock.
func New(sim *vtime.Sim) *Tracer { return &Tracer{sim: sim} }

// Enabled reports whether the tracer records events. It is the idiomatic
// guard before building expensive annotations.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the current virtual time, or zero on a nil tracer. Use it to
// capture span start times without touching the kernel on untraced paths.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.sim.Now()
}

// SetTap installs tap to observe every subsequent event; nil detaches.
// Nil-safe on a nil tracer.
func (t *Tracer) SetTap(tap Tap) {
	if t == nil {
		return
	}
	if tap == nil {
		t.tap.Store(nil)
		return
	}
	t.tap.Store(&tap)
}

// Emit records ev as given. Nil-safe.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
	if tap := t.tap.Load(); tap != nil {
		(*tap).Record(ev)
	}
}

// Instant records an instant event stamped now. Nil-safe.
func (t *Tracer) Instant(cat, name, proc, thr, id string, args ...Arg) {
	if t == nil {
		return
	}
	t.Emit(Event{At: t.sim.Now(), Cat: cat, Name: name, Proc: proc, Thr: thr, ID: id, Args: args})
}

// Span records a complete span from start to now. Nil-safe.
func (t *Tracer) Span(cat, name, proc, thr, id string, start time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.SpanAt(cat, name, proc, thr, id, start, t.sim.Now(), args...)
}

// SpanAt records a complete span over [start, end). A span with end < start
// is recorded with zero duration. Nil-safe.
func (t *Tracer) SpanAt(cat, name, proc, thr, id string, start, end time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.Emit(Event{At: start, Dur: dur, Cat: cat, Name: name, Proc: proc, Thr: thr, ID: id, Args: args})
}

// InstantCtx records an instant event stamped now, tagged with the span
// context. Nil-safe.
func (t *Tracer) InstantCtx(ctx Ctx, cat, name, proc, thr, id string, args ...Arg) {
	if t == nil {
		return
	}
	t.Emit(Event{At: t.sim.Now(), Cat: cat, Name: name, Proc: proc, Thr: thr, ID: id,
		Req: ctx.Req, Span: ctx.Span, Args: args})
}

// SpanCtx records a complete span from start to now, tagged with the span
// context. Nil-safe.
func (t *Tracer) SpanCtx(ctx Ctx, cat, name, proc, thr, id string, start time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.SpanAtCtx(ctx, cat, name, proc, thr, id, start, t.sim.Now(), args...)
}

// SpanAtCtx records a complete span over [start, end), tagged with the
// span context. A span with end < start is recorded with zero duration.
// Nil-safe.
func (t *Tracer) SpanAtCtx(ctx Ctx, cat, name, proc, thr, id string, start, end time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.Emit(Event{At: start, Dur: dur, Cat: cat, Name: name, Proc: proc, Thr: thr, ID: id,
		Req: ctx.Req, Span: ctx.Span, Args: args})
}

// Add records a phase span under category "phase", satisfying the
// gram.PhaseRecorder interface so a Tracer can stand in anywhere a
// metrics.Timeline was used. The actor becomes the thread track inside a
// single "timeline" process — one swimlane per actor, the Figure 5 layout —
// and DeriveTimeline recovers the original (actor, phase) spans. Nil-safe.
func (t *Tracer) Add(actor, phase string, start, end time.Duration) {
	t.SpanAt("phase", phase, "timeline", actor, "", start, end)
}

// Len returns the number of recorded events (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in the deterministic export
// order. Returns nil on a nil tracer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	Sort(out)
	return out
}

// Sort orders events by the total deterministic order used for export:
// time, then process, thread, category, name, correlation ID, duration, and
// finally argument content. Processes that run concurrently within one
// virtual instant may append events in any real-time order; sorting by
// content restores a unique order because each event's content is itself
// deterministic.
func Sort(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return less(events[i], events[j]) })
}

// Less reports whether a sorts strictly before b in the deterministic
// export order — the comparator behind Sort, exported so dump validators
// can verify an event stream is already in trace order.
func Less(a, b Event) bool { return less(a, b) }

func less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	if a.Thr != b.Thr {
		return a.Thr < b.Thr
	}
	if a.Cat != b.Cat {
		return a.Cat < b.Cat
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.Req != b.Req {
		return a.Req < b.Req
	}
	if a.Span != b.Span {
		return a.Span < b.Span
	}
	if a.Dur != b.Dur {
		return a.Dur < b.Dur
	}
	for k := 0; k < len(a.Args) && k < len(b.Args); k++ {
		if a.Args[k].Key != b.Args[k].Key {
			return a.Args[k].Key < b.Args[k].Key
		}
		if a.Args[k].Val != b.Args[k].Val {
			return a.Args[k].Val < b.Args[k].Val
		}
	}
	return len(a.Args) < len(b.Args)
}
