package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

func exportFixtureEvents() []Event {
	return []Event{
		{At: 0, Cat: "transport", Name: "hop", Proc: "m1", Thr: "m1->m2", ID: "f1",
			Dur: 2 * time.Millisecond,
			Args: []Arg{{Key: "to", Val: "m2:gram"}, {Key: "bytes", Val: "120"},
				{Key: "outcome", Val: "ok"}}},
		{At: 5 * time.Millisecond, Cat: "rpc", Name: "call:submit", Proc: "workstation",
			Req: "req-1", Span: "/call"},
		{At: 6 * time.Millisecond, Cat: "x", Name: `quote"back\slash`, Proc: "p",
			Args: []Arg{{Key: "v", Val: "line1\nline2\ttab\x01ctl"}}},
		{At: 7 * time.Millisecond, Cat: "flow", Name: "dial", Proc: "a",
			Thr: "a:client=>b:gram@7000"},
	}
}

func TestAppendJSONLMatchesEncodingJSON(t *testing.T) {
	// Every line the append encoder emits must decode into exactly the
	// jsonlEvent that encoding/json would produce for the same event —
	// proving escaping and omitempty semantics agree.
	events := exportFixtureEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("got %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got jsonlEvent
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, line)
		}
		want := jsonlEvent{
			At: int64(events[i].At), Dur: int64(events[i].Dur),
			Cat: events[i].Cat, Name: events[i].Name, Proc: events[i].Proc,
			Thr: events[i].Thr, ID: events[i].ID, Req: events[i].Req,
			Span: events[i].Span, Args: argMap(events[i].Args),
		}
		raw, _ := json.Marshal(want)
		var norm jsonlEvent
		_ = json.Unmarshal(raw, &norm)
		if got.At != norm.At || got.Dur != norm.Dur || got.Cat != norm.Cat ||
			got.Name != norm.Name || got.Proc != norm.Proc || got.Thr != norm.Thr ||
			got.ID != norm.ID || got.Req != norm.Req || got.Span != norm.Span {
			t.Fatalf("line %d decodes to %+v, want %+v", i, got, norm)
		}
		if len(got.Args) != len(norm.Args) {
			t.Fatalf("line %d args %v, want %v", i, got.Args, norm.Args)
		}
		for k, v := range norm.Args {
			if got.Args[k] != v {
				t.Fatalf("line %d arg %q = %q, want %q", i, k, got.Args[k], v)
			}
		}
	}
}

func TestWriteJSONLPooledRoundTrip(t *testing.T) {
	events := exportFixtureEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	for i := range back {
		if back[i].At != events[i].At || back[i].Name != events[i].Name ||
			back[i].Cat != events[i].Cat || back[i].Thr != events[i].Thr {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, back[i], events[i])
		}
	}
	// Args come back sorted by key (ReadJSONL contract).
	if got := back[0].Args; len(got) != 3 || got[0].Key != "bytes" || got[2].Key != "to" {
		t.Fatalf("args not sorted on read: %v", got)
	}
}

func TestWriteJSONLAllocsAmortized(t *testing.T) {
	// Steady-state encoding must not allocate per event: the buffer comes
	// from a pool and is appended in place. Allow a fraction of an alloc
	// per event for pool slow paths.
	events := make([]Event, 500)
	for i := range events {
		events[i] = Event{
			At: time.Duration(i) * time.Millisecond, Cat: "transport", Name: "hop",
			Proc: "m1", Thr: "m1->m2", Dur: time.Millisecond,
			Args: []Arg{{Key: "bytes", Val: "120"}, {Key: "to", Val: "m2:gram"}},
		}
	}
	// Warm the pool.
	_ = WriteJSONL(io.Discard, events)
	allocs := testing.AllocsPerRun(20, func() {
		_ = WriteJSONL(io.Discard, events)
	})
	perEvent := allocs / float64(len(events))
	if perEvent > 0.02 {
		t.Fatalf("JSONL export allocates %.3f per event, want ~0", perEvent)
	}
}

func BenchmarkWriteJSONL(b *testing.B) {
	// One op = one event encoded and written, from a pre-built trace.
	events := make([]Event, 512)
	for i := range events {
		events[i] = Event{
			At: time.Duration(i) * time.Millisecond, Cat: "rpc", Name: "call:submit",
			Proc: "workstation", Thr: "client", ID: "flow#1", Req: "req-1", Span: "/call",
			Dur:  2 * time.Millisecond,
			Args: []Arg{{Key: "outcome", Val: "ok"}},
		}
	}
	_ = WriteJSONL(io.Discard, events) // warm pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events) : i%len(events)+1]
		if err := WriteJSONL(io.Discard, ev); err != nil {
			b.Fatal(err)
		}
	}
}
