package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file reconstructs causal request trees from a trace and attributes
// each request's end-to-end latency along its critical path — the automated
// version of the paper's Figure 2-5 per-layer decomposition, including
// "which subjob gated barrier release".
//
// Tree building uses only the propagated span context (Event.Req and
// Event.Span): every span event with the same (Req, Span) path becomes one
// Node holding the intervals of all its occurrences, and a node's parent is
// the longest proper "/"-prefix of its path that names another node. The
// critical path of a window [ws, we) is computed by walking backward from
// we: the overlapping child interval ending latest is attributed its
// (clipped) sub-window recursively, the gap above it is the node's own
// time, and the walk resumes from that child's start. The produced segments
// exactly partition the window, so critical-path durations always sum to
// the root's duration — the measured end-to-end latency.

// Interval is one occurrence of a span node.
type Interval struct {
	Start, End time.Duration
}

// Node is one span path in a request's causal tree. A path that was emitted
// more than once (e.g. the per-slice "commit" span, or message hops under
// one call) holds every occurrence in Intervals.
type Node struct {
	Path      string
	Cat, Name string
	Intervals []Interval
	Children  []*Node
	Instants  int
}

// Window returns the node's overall extent: earliest interval start to
// latest interval end.
func (n *Node) Window() (start, end time.Duration) {
	start, end = n.Intervals[0].Start, n.Intervals[0].End
	for _, iv := range n.Intervals[1:] {
		if iv.Start < start {
			start = iv.Start
		}
		if iv.End > end {
			end = iv.End
		}
	}
	return start, end
}

// Tree is the causal tree of one request id.
type Tree struct {
	Req string
	// Root is the node with path "req" (the NewRequest root), nil for
	// daemon trees whose spans all live below an unemitted root.
	Root *Node
	// Roots are all nodes without a parent in this tree.
	Roots []*Node
	Nodes map[string]*Node
	// Loose counts instant events whose span path matched no node even by
	// prefix.
	Loose int
}

// Segment is one critical-path piece: [Start, End) of the request's
// end-to-end window attributed to Node.
type Segment struct {
	Node       *Node
	Start, End time.Duration
}

// Dur returns the segment's length.
func (s Segment) Dur() time.Duration { return s.End - s.Start }

// Analysis is the result of reconstructing causal trees from a trace.
type Analysis struct {
	// Trees holds one tree per request id, sorted by id.
	Trees []*Tree
	// Events counts all input events; WithReq those carrying a request id.
	Events, WithReq int
}

// Analyze groups events by request id and builds each request's causal
// tree. The input order does not matter; events are re-sorted into the
// deterministic export order first, so same-seed traces analyze to
// identical trees.
func Analyze(events []Event) *Analysis {
	sorted := append([]Event(nil), events...)
	Sort(sorted)
	a := &Analysis{Events: len(sorted)}
	byReq := map[string]*Tree{}
	for _, ev := range sorted {
		if ev.Req == "" {
			continue
		}
		a.WithReq++
		t := byReq[ev.Req]
		if t == nil {
			t = &Tree{Req: ev.Req, Nodes: map[string]*Node{}}
			byReq[ev.Req] = t
			a.Trees = append(a.Trees, t)
		}
		if ev.Dur > 0 {
			n := t.Nodes[ev.Span]
			if n == nil {
				n = &Node{Path: ev.Span, Cat: ev.Cat, Name: ev.Name}
				t.Nodes[ev.Span] = n
			}
			n.Intervals = append(n.Intervals, Interval{Start: ev.At, End: ev.At + ev.Dur})
		}
	}
	// Link parents and attach instants once all nodes exist.
	for _, t := range byReq {
		paths := make([]string, 0, len(t.Nodes))
		for p := range t.Nodes {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			n := t.Nodes[p]
			if parent := t.ancestor(parentPath(p)); parent != nil {
				parent.Children = append(parent.Children, n)
			} else {
				t.Roots = append(t.Roots, n)
			}
		}
		t.Root = t.Nodes["req"]
	}
	for _, ev := range sorted {
		if ev.Req == "" || ev.Dur > 0 {
			continue
		}
		t := byReq[ev.Req]
		if n := t.ancestor(ev.Span); n != nil {
			n.Instants++
		} else {
			t.Loose++
		}
	}
	sort.Slice(a.Trees, func(i, j int) bool { return a.Trees[i].Req < a.Trees[j].Req })
	return a
}

// ancestor returns the node at path p, or at the longest proper prefix of p
// that names a node, or nil.
func (t *Tree) ancestor(p string) *Node {
	for p != "" {
		if n := t.Nodes[p]; n != nil {
			return n
		}
		p = parentPath(p)
	}
	return nil
}

func parentPath(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i < 0 {
		return ""
	}
	return p[:i]
}

// CriticalPath attributes the tree's end-to-end window along its critical
// path. It requires a "req" root; daemon trees return nil. The returned
// segments exactly partition the root window, latest first.
func (t *Tree) CriticalPath() []Segment {
	if t.Root == nil {
		return nil
	}
	ws, we := t.Root.Window()
	return criticalPath(t.Root, ws, we)
}

func criticalPath(n *Node, ws, we time.Duration) []Segment {
	type childIv struct {
		node       *Node
		start, end time.Duration
	}
	var ivs []childIv
	for _, c := range n.Children {
		for _, iv := range c.Intervals {
			s, e := iv.Start, iv.End
			if s < ws {
				s = ws
			}
			if e > we {
				e = we
			}
			if e > s {
				ivs = append(ivs, childIv{c, s, e})
			}
		}
	}
	var segs []Segment
	cur := we
	for cur > ws {
		var best *childIv
		var bestEnd time.Duration
		for i := range ivs {
			iv := &ivs[i]
			if iv.start >= cur {
				continue
			}
			e := iv.end
			if e > cur {
				e = cur
			}
			if best == nil || e > bestEnd ||
				(e == bestEnd && (iv.start > best.start ||
					(iv.start == best.start && iv.node.Path < best.node.Path))) {
				best, bestEnd = iv, e
			}
		}
		if best == nil {
			segs = append(segs, Segment{Node: n, Start: ws, End: cur})
			break
		}
		if bestEnd < cur {
			segs = append(segs, Segment{Node: n, Start: bestEnd, End: cur})
		}
		segs = append(segs, criticalPath(best.node, best.start, bestEnd)...)
		cur = best.start
	}
	return segs
}

// GatingSubjob names the subjob whose startup gated barrier release: the
// "startup-wait" span ending latest in the tree. Empty when the tree has
// none (e.g. a failed request).
func (t *Tree) GatingSubjob() string {
	var best *Node
	var bestEnd time.Duration
	paths := make([]string, 0, len(t.Nodes))
	for p := range t.Nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		n := t.Nodes[p]
		if n.Name != "startup-wait" {
			continue
		}
		_, end := n.Window()
		if best == nil || end > bestEnd {
			best, bestEnd = n, end
		}
	}
	if best == nil {
		return ""
	}
	// The subjob is the path segment above "startup-wait": ".../sj:<label>".
	seg := parentPath(best.Path)
	if i := strings.LastIndexByte(seg, '/'); i >= 0 {
		seg = seg[i+1:]
	}
	return strings.TrimPrefix(seg, "sj:")
}

// RequestTrees returns the trees rooted by a NewRequest span — actual
// co-allocation requests, as opposed to daemon activity trees.
func (a *Analysis) RequestTrees() []*Tree {
	var out []*Tree
	for _, t := range a.Trees {
		if t.Root != nil {
			out = append(out, t)
		}
	}
	return out
}

// Coverage returns the fraction of events carrying a request id.
func (a *Analysis) Coverage() float64 {
	if a.Events == 0 {
		return 1
	}
	return float64(a.WithReq) / float64(a.Events)
}

// Check validates the analysis against the causal-tracing invariants and
// returns a deterministic list of problems (empty when healthy):
// request-id coverage at least 99%, every request tree single-rooted, and
// every request's critical-path segments summing exactly to its end-to-end
// latency.
func (a *Analysis) Check() []string {
	var problems []string
	if a.Coverage() < 0.99 {
		problems = append(problems, fmt.Sprintf(
			"request-id coverage %.2f%% below 99%% (%d of %d events unattributed)",
			100*a.Coverage(), a.Events-a.WithReq, a.Events))
	}
	for _, t := range a.RequestTrees() {
		if len(t.Roots) != 1 {
			var extras []string
			for _, r := range t.Roots {
				if r != t.Root {
					extras = append(extras, r.Path)
				}
			}
			problems = append(problems, fmt.Sprintf(
				"broken tree: request %s has %d roots (orphan spans: %s)",
				t.Req, len(t.Roots), strings.Join(extras, ", ")))
		}
		ws, we := t.Root.Window()
		var sum time.Duration
		for _, seg := range t.CriticalPath() {
			sum += seg.Dur()
		}
		if sum != we-ws {
			problems = append(problems, fmt.Sprintf(
				"critical path of request %s sums to %v, want end-to-end %v",
				t.Req, sum, we-ws))
		}
		if t.Loose > 0 {
			problems = append(problems, fmt.Sprintf(
				"request %s has %d instants matching no span", t.Req, t.Loose))
		}
	}
	return problems
}

// Report renders the deterministic per-request, per-layer critical-path
// attribution table plus an aggregate across all requests.
func (a *Analysis) Report() string {
	var b strings.Builder
	reqs := a.RequestTrees()
	fmt.Fprintf(&b, "causal trace: %d events, %d with request id (%.2f%% coverage), %d request trees, %d daemon trees\n",
		a.Events, a.WithReq, 100*a.Coverage(), len(reqs), len(a.Trees)-len(reqs))
	agg := map[string]time.Duration{}
	var aggTotal time.Duration
	for _, t := range reqs {
		ws, we := t.Root.Window()
		segs := t.CriticalPath()
		gate := t.GatingSubjob()
		if gate == "" {
			gate = "-"
		}
		fmt.Fprintf(&b, "\nrequest %s  total %v  gating-subjob %s\n", t.Req, we-ws, gate)
		rows := map[string]time.Duration{}
		for _, seg := range segs {
			key := seg.Node.Cat + "/" + seg.Node.Name
			rows[key] += seg.Dur()
			agg[key] += seg.Dur()
			aggTotal += seg.Dur()
		}
		writeAttribution(&b, rows, we-ws)
	}
	if len(reqs) > 0 {
		fmt.Fprintf(&b, "\naggregate critical-path attribution over %d requests (total %v)\n", len(reqs), aggTotal)
		writeAttribution(&b, agg, aggTotal)
	}
	return b.String()
}

// writeAttribution prints one layer/name attribution table, largest share
// first, ties broken by name.
func writeAttribution(b *strings.Builder, rows map[string]time.Duration, total time.Duration) {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if rows[keys[i]] != rows[keys[j]] {
			return rows[keys[i]] > rows[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		share := 0.0
		if total > 0 {
			share = 100 * float64(rows[k]) / float64(total)
		}
		fmt.Fprintf(b, "  %-28s %14v %6.2f%%\n", k, rows[k], share)
	}
}
