package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a handle to one named counter. Callers on hot paths should
// obtain the handle once with Counters.C and keep it: Add is a single
// atomic operation. A nil *Counter is a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counters is a registry of named monotonic counters. Names follow the
// layer.object.verb convention with an optional @scope suffix naming the
// host, service, or connection the count belongs to — see Key. The registry
// lookup takes a read lock; the increment itself is atomic, so cached
// handles make counting lock-free on the hot path. A nil *Counters is a
// valid no-op registry.
type Counters struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewCounters creates an empty registry.
func NewCounters() *Counters { return &Counters{m: make(map[string]*Counter)} }

// Key builds a counter name: layer.object.verb, plus "@scope" when scope is
// non-empty. Example: Key("transport", "msgs", "send", "m1") is
// "transport.msgs.send@m1".
func Key(layer, object, verb, scope string) string {
	k := layer + "." + object + "." + verb
	if scope != "" {
		k += "@" + scope
	}
	return k
}

// C returns the handle for name, creating the counter on first use.
// Returns nil on a nil registry.
func (c *Counters) C(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	h, ok := c.m[name]
	c.mu.RUnlock()
	if ok {
		return h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok = c.m[name]; ok {
		return h
	}
	h = &Counter{}
	c.m[name] = h
	return h
}

// Add increments the named counter, creating it on first use. Nil-safe.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.C(name).Add(delta)
}

// Get returns the named counter's value, or 0 if it was never incremented.
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	h := c.m[name]
	c.mu.RUnlock()
	return h.Load()
}

// CounterValue is one snapshot entry.
type CounterValue struct {
	Name  string
	Value int64
}

// Snapshot returns every counter sorted by name — the deterministic dump
// order. Returns nil on a nil registry.
func (c *Counters) Snapshot() []CounterValue {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	out := make([]CounterValue, 0, len(c.m))
	for name, h := range c.m {
		out = append(out, CounterValue{Name: name, Value: h.Load()})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the snapshot as an aligned two-column table.
func (c *Counters) String() string {
	snap := c.Snapshot()
	if len(snap) == 0 {
		return "(no counters)\n"
	}
	width := 0
	for _, cv := range snap {
		if len(cv.Name) > width {
			width = len(cv.Name)
		}
	}
	var sb strings.Builder
	for _, cv := range snap {
		fmt.Fprintf(&sb, "%-*s %d\n", width, cv.Name, cv.Value)
	}
	return sb.String()
}
