package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"cogrid/internal/metrics"
	"cogrid/internal/vtime"
)

// jsonlEvent is the JSONL wire form: virtual times in integer nanoseconds.
type jsonlEvent struct {
	At   int64             `json:"at"`
	Dur  int64             `json:"dur,omitempty"`
	Cat  string            `json:"cat"`
	Name string            `json:"name"`
	Proc string            `json:"proc,omitempty"`
	Thr  string            `json:"thr,omitempty"`
	ID   string            `json:"id,omitempty"`
	Req  string            `json:"req,omitempty"`
	Span string            `json:"span,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// jsonlBufPool recycles encode buffers across WriteJSONL calls, so tracing
// a long run amortizes to zero allocations per event in steady state
// (BenchmarkWriteJSONL / TestWriteJSONLAllocs pin this down).
var jsonlBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64*1024)
		return &b
	},
}

// jsonlFlushAt bounds buffered bytes before flushing to the writer.
const jsonlFlushAt = 48 * 1024

// WriteJSONL writes events one JSON object per line. Events must already be
// in the desired order (Tracer.Events returns the deterministic order).
// Encoding appends into a pooled buffer — no per-event allocation — and the
// output is parseable by ReadJSONL; field order matches jsonlEvent.
func WriteJSONL(w io.Writer, events []Event) error {
	bp := jsonlBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	defer func() {
		*bp = buf[:0]
		jsonlBufPool.Put(bp)
	}()
	for i := range events {
		buf = appendJSONLEvent(buf, &events[i])
		if len(buf) >= jsonlFlushAt {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
		buf = buf[:0]
	}
	return nil
}

// appendJSONLEvent appends one event as a JSON object plus newline,
// mirroring jsonlEvent's field order and omitempty semantics.
func appendJSONLEvent(buf []byte, ev *Event) []byte {
	buf = append(buf, `{"at":`...)
	buf = strconv.AppendInt(buf, int64(ev.At), 10)
	if ev.Dur != 0 {
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendInt(buf, int64(ev.Dur), 10)
	}
	buf = append(buf, `,"cat":`...)
	buf = appendJSONString(buf, ev.Cat)
	buf = append(buf, `,"name":`...)
	buf = appendJSONString(buf, ev.Name)
	buf = appendOptField(buf, "proc", ev.Proc)
	buf = appendOptField(buf, "thr", ev.Thr)
	buf = appendOptField(buf, "id", ev.ID)
	buf = appendOptField(buf, "req", ev.Req)
	buf = appendOptField(buf, "span", ev.Span)
	if len(ev.Args) > 0 {
		buf = append(buf, `,"args":{`...)
		// Keys in sorted order, matching encoding/json map output. Arg
		// lists are tiny (≤ ~3), so an index selection sort avoids
		// allocating a scratch slice.
		emitted := 0
		prev := ""
		for emitted < len(ev.Args) {
			next := -1
			for i, a := range ev.Args {
				if (emitted == 0 || a.Key > prev) && (next < 0 || a.Key < ev.Args[next].Key) {
					next = i
				}
			}
			if next < 0 {
				break // duplicate keys: emit each distinct key once
			}
			if emitted > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, ev.Args[next].Key)
			buf = append(buf, ':')
			buf = appendJSONString(buf, ev.Args[next].Val)
			prev = ev.Args[next].Key
			emitted++
		}
		buf = append(buf, '}')
	}
	return append(buf, '}', '\n')
}

func appendOptField(buf []byte, key, val string) []byte {
	if val == "" {
		return buf
	}
	buf = append(buf, ',', '"')
	buf = append(buf, key...)
	buf = append(buf, '"', ':')
	return appendJSONString(buf, val)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Escaping follows
// RFC 8259 (quote, backslash, and control characters; UTF-8 passes
// through verbatim) — strconv.AppendQuote is not usable here because Go
// string escaping is not JSON escaping.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// ReadJSONL parses a JSONL trace written by WriteJSONL back into events,
// preserving order. Blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("trace: bad JSONL line %d: %w", len(events)+1, err)
		}
		ev := Event{
			At:   time.Duration(je.At),
			Dur:  time.Duration(je.Dur),
			Cat:  je.Cat,
			Name: je.Name,
			Proc: je.Proc,
			Thr:  je.Thr,
			ID:   je.ID,
			Req:  je.Req,
			Span: je.Span,
		}
		if len(je.Args) > 0 {
			keys := make([]string, 0, len(je.Args))
			for k := range je.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				ev.Args = append(ev.Args, Arg{Key: k, Val: je.Args[k]})
			}
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// WriteJSONL writes the tracer's events as JSONL in deterministic order.
func (t *Tracer) WriteJSONL(w io.Writer) error { return WriteJSONL(w, t.Events()) }

// chromeEvent is one entry of the Chrome trace_event format (the JSON Array
// Format of the Trace Event specification), loadable in chrome://tracing
// and Perfetto. Timestamps are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	ID   string            `json:"id,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes events in Chrome trace_event JSON object format.
// Spans become complete ("X") events and instants become thread-scoped
// instant ("i") events. Processes and threads are assigned stable integer
// ids in sorted-name order, with metadata records naming each, so the same
// event set always serializes to the same bytes.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// Assign pids to sorted process names and tids to sorted thread names
	// within each process.
	procs := map[string]int{}
	threads := map[string]map[string]int{}
	var procNames []string
	for _, ev := range events {
		if _, ok := procs[ev.Proc]; !ok {
			procs[ev.Proc] = 0
			threads[ev.Proc] = map[string]int{}
			procNames = append(procNames, ev.Proc)
		}
		threads[ev.Proc][ev.Thr] = 0
	}
	sort.Strings(procNames)
	var out []chromeEvent
	for i, p := range procNames {
		procs[p] = i + 1
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]string{"name": p},
		})
		var thrNames []string
		for thr := range threads[p] {
			thrNames = append(thrNames, thr)
		}
		sort.Strings(thrNames)
		for k, thr := range thrNames {
			threads[p][thr] = k + 1
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: i + 1, Tid: k + 1,
				Args: map[string]string{"name": thr},
			})
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ts:   float64(ev.At) / float64(time.Microsecond),
			Pid:  procs[ev.Proc],
			Tid:  threads[ev.Proc][ev.Thr],
			ID:   ev.ID,
			Args: argMap(ev.Args),
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / float64(time.Microsecond)
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out = append(out, ce)
	}
	raw, err := json.Marshal(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"})
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// WriteChromeTrace writes the tracer's events as a Chrome trace in
// deterministic order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Events())
}

func argMap(args []Arg) map[string]string {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]string, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// itoa formats small integers for Args and span segments.
func itoa(n int) string { return strconv.Itoa(n) }

// DeriveTimeline reconstructs a metrics.Timeline from span events,
// demonstrating that the legacy phase-timeline view is a projection of the
// trace stream: each span event becomes a timeline span with Actor = Thr
// and Phase = Name. When cats is non-empty only those categories are
// included (e.g. "gram", "duroc" reproduces the Figure 5 submission
// timeline without transport noise).
func DeriveTimeline(sim *vtime.Sim, events []Event, cats ...string) *metrics.Timeline {
	want := map[string]bool{}
	for _, c := range cats {
		want[c] = true
	}
	tl := metrics.NewTimeline(sim)
	for _, ev := range events {
		if ev.Dur <= 0 {
			continue
		}
		if len(want) > 0 && !want[ev.Cat] {
			continue
		}
		actor := ev.Thr
		if actor == "" {
			actor = ev.Proc
		}
		tl.Add(actor, ev.Name, ev.At, ev.At+ev.Dur)
	}
	return tl
}
