package trace

import (
	"strings"
	"testing"
	"time"
)

// synthetic builds a hand-written two-request trace with known shape:
//
//	req-a: req [0,100ms)
//	         ├── req/queue-wait [0,40ms)
//	         └── req/attempt0 [40ms,100ms)
//	               ├── req/attempt0/sj:east/startup-wait [50ms,90ms)
//	               └── req/attempt0/sj:west/startup-wait [50ms,70ms)
//	req-b: req [0,10ms) with a repeated child span (two commit legs)
//	daemon: cache@x refresh spans with no "req" root
func synthetic() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		{At: ms(0), Dur: ms(100), Cat: "client", Name: "request", Req: "req-a", Span: "req"},
		{At: ms(0), Dur: ms(40), Cat: "broker", Name: "queue-wait", Req: "req-a", Span: "req/queue-wait"},
		{At: ms(40), Dur: ms(60), Cat: "broker", Name: "attempt", Req: "req-a", Span: "req/attempt0"},
		{At: ms(50), Dur: ms(40), Cat: "duroc", Name: "startup-wait", Req: "req-a", Span: "req/attempt0/sj:east/startup-wait"},
		{At: ms(50), Dur: ms(20), Cat: "duroc", Name: "startup-wait", Req: "req-a", Span: "req/attempt0/sj:west/startup-wait"},
		{At: ms(55), Cat: "duroc", Name: "barrier-enter", Req: "req-a", Span: "req/attempt0/sj:west"},

		{At: ms(0), Dur: ms(10), Cat: "client", Name: "request", Req: "req-b", Span: "req"},
		{At: ms(1), Dur: ms(3), Cat: "duroc", Name: "commit", Req: "req-b", Span: "req/commit"},
		{At: ms(5), Dur: ms(4), Cat: "duroc", Name: "commit", Req: "req-b", Span: "req/commit"},

		{At: ms(7), Dur: ms(2), Cat: "broker", Name: "cache-refresh", Req: "cache@x", Span: "req/refresh"},
	}
}

func TestAnalyzeBuildsTreesAndMergesRepeats(t *testing.T) {
	a := Analyze(synthetic())
	if len(a.Trees) != 3 {
		t.Fatalf("trees = %d, want 3", len(a.Trees))
	}
	// cache@x has spans only below an unemitted "req" root: a daemon tree.
	if got := len(a.RequestTrees()); got != 2 {
		t.Errorf("request trees = %d, want 2", got)
	}
	var ta, tb *Tree
	for _, tr := range a.Trees {
		switch tr.Req {
		case "req-a":
			ta = tr
		case "req-b":
			tb = tr
		}
	}
	if ta == nil || tb == nil {
		t.Fatal("missing req-a or req-b tree")
	}
	if len(ta.Roots) != 1 || ta.Root == nil {
		t.Errorf("req-a roots = %d (root %v), want single root", len(ta.Roots), ta.Root)
	}
	// The instant at sj:west has no node of its own; it must attach to the
	// nearest ancestor span, not count as loose.
	if ta.Loose != 0 {
		t.Errorf("req-a loose instants = %d, want 0", ta.Loose)
	}
	// Both commit legs of req-b merge into one node holding two intervals.
	commit := tb.Nodes["req/commit"]
	if commit == nil || len(commit.Intervals) != 2 {
		t.Fatalf("req/commit node = %+v, want one node with 2 intervals", commit)
	}
}

func TestCriticalPathPartitionsWindowExactly(t *testing.T) {
	a := Analyze(synthetic())
	for _, tr := range a.RequestTrees() {
		ws, we := tr.Root.Window()
		var sum time.Duration
		end := we
		for _, seg := range tr.CriticalPath() {
			if seg.End != end {
				t.Errorf("%s: segment ends at %v, want contiguous %v", tr.Req, seg.End, end)
			}
			end = seg.Start
			sum += seg.Dur()
		}
		if end != ws {
			t.Errorf("%s: walk stopped at %v, want window start %v", tr.Req, end, ws)
		}
		if sum != we-ws {
			t.Errorf("%s: critical path sums to %v, want %v", tr.Req, sum, we-ws)
		}
	}
}

func TestCriticalPathPicksLatestEndingChild(t *testing.T) {
	a := Analyze(synthetic())
	var ta *Tree
	for _, tr := range a.RequestTrees() {
		if tr.Req == "req-a" {
			ta = tr
		}
	}
	// Walking back from 100ms: attempt0's own tail [90,100), then the
	// east startup-wait [50,90) — not west, which ended earlier — then
	// attempt0 [40,50), then queue-wait [0,40).
	var got []string
	for _, seg := range ta.CriticalPath() {
		got = append(got, seg.Node.Cat+"/"+seg.Node.Name)
	}
	want := "broker/attempt duroc/startup-wait broker/attempt broker/queue-wait"
	if strings.Join(got, " ") != want {
		t.Errorf("critical path = %v, want %s", got, want)
	}
	if gate := ta.GatingSubjob(); gate != "east" {
		t.Errorf("gating subjob = %q, want east (latest startup-wait)", gate)
	}
}

func TestCheckFlagsBrokenInvariants(t *testing.T) {
	if problems := Analyze(synthetic()).Check(); len(problems) != 0 {
		t.Errorf("healthy trace reported problems: %v", problems)
	}
	// Orphan span path that shares no prefix with "req" splits the tree;
	// unattributed events sink coverage below 99%.
	bad := append(synthetic(),
		Event{At: 0, Dur: time.Millisecond, Cat: "x", Name: "stray", Req: "req-a", Span: "elsewhere"},
		Event{At: 0, Cat: "x", Name: "naked"},
	)
	problems := Analyze(bad).Check()
	var sawCoverage, sawBroken bool
	for _, p := range problems {
		if strings.Contains(p, "coverage") {
			sawCoverage = true
		}
		if strings.Contains(p, "broken tree") {
			sawBroken = true
		}
	}
	if !sawCoverage || !sawBroken {
		t.Errorf("Check() = %v, want coverage and broken-tree problems", problems)
	}
}

func TestReportIsDeterministic(t *testing.T) {
	events := synthetic()
	r1 := Analyze(events).Report()
	// Reversed input order must not change the report.
	rev := make([]Event, len(events))
	for i, ev := range events {
		rev[len(events)-1-i] = ev
	}
	r2 := Analyze(rev).Report()
	if r1 != r2 {
		t.Errorf("reports differ under input reordering:\n--- fwd\n%s--- rev\n%s", r1, r2)
	}
	if !strings.Contains(r1, "gating-subjob east") {
		t.Errorf("report missing gating subjob:\n%s", r1)
	}
}
