package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"cogrid/internal/vtime"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer Enabled() = true")
	}
	if tr.Now() != 0 {
		t.Error("nil tracer Now() != 0")
	}
	// None of these may panic.
	tr.Emit(Event{Name: "x"})
	tr.Instant("c", "n", "p", "t", "")
	tr.Span("c", "n", "p", "t", "", 0)
	tr.SpanAt("c", "n", "p", "t", "", 0, time.Second)
	tr.Add("actor", "phase", 0, time.Second)
	if tr.Len() != 0 {
		t.Error("nil tracer Len() != 0")
	}
	if tr.Events() != nil {
		t.Error("nil tracer Events() != nil")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
}

func TestNilCountersAreNoOp(t *testing.T) {
	var cs *Counters
	cs.Add("x", 1)
	if cs.C("x") != nil {
		t.Error("nil Counters.C != nil")
	}
	if cs.Get("x") != 0 {
		t.Error("nil Counters.Get != 0")
	}
	if cs.Snapshot() != nil {
		t.Error("nil Counters.Snapshot != nil")
	}
	var c *Counter
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil Counter.Load != 0")
	}
}

func TestSpanAtClampsNegativeDuration(t *testing.T) {
	sim := vtime.New()
	tr := New(sim)
	tr.SpanAt("c", "n", "p", "t", "", 2*time.Second, time.Second)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Dur != 0 {
		t.Fatalf("events = %+v, want one zero-duration span", evs)
	}
}

// Events appended in any real-time order sort to one deterministic order.
func TestSortIsTotalAndDeterministic(t *testing.T) {
	mk := func() []Event {
		return []Event{
			{At: 2, Cat: "b", Name: "x", Proc: "p1"},
			{At: 1, Cat: "a", Name: "y", Proc: "p2", Thr: "t"},
			{At: 1, Cat: "a", Name: "y", Proc: "p1"},
			{At: 1, Cat: "a", Name: "x", Proc: "p1", Args: []Arg{{"k", "v"}}},
			{At: 1, Cat: "a", Name: "x", Proc: "p1", Args: []Arg{{"k", "u"}}},
			{At: 1, Cat: "a", Name: "x", Proc: "p1"},
		}
	}
	fwd := mk()
	Sort(fwd)
	rev := mk()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	Sort(rev)
	for i := range fwd {
		a, b := fwd[i], rev[i]
		if a.At != b.At || a.Name != b.Name || a.Proc != b.Proc || len(a.Args) != len(b.Args) {
			t.Fatalf("order diverges at %d: %+v vs %+v", i, a, b)
		}
	}
	for i := 1; i < len(fwd); i++ {
		if less(fwd[i], fwd[i-1]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestCountersConcurrent(t *testing.T) {
	cs := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := cs.C("shared")
			for i := 0; i < 1000; i++ {
				h.Add(1)
				cs.Add("registry", 1)
			}
		}()
	}
	wg.Wait()
	if got := cs.Get("shared"); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
	if got := cs.Get("registry"); got != 8000 {
		t.Errorf("registry = %d, want 8000", got)
	}
}

func TestKeyConvention(t *testing.T) {
	if got := Key("transport", "msgs", "send", "m1"); got != "transport.msgs.send@m1" {
		t.Errorf("Key = %q", got)
	}
	if got := Key("rpc", "call", "ok", ""); got != "rpc.call.ok" {
		t.Errorf("Key without scope = %q", got)
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	sim := vtime.New()
	tr := New(sim)
	tr.Instant("cat", "inst", "proc", "thr", "id1", Arg{"k", "v"})
	tr.SpanAt("cat", "span", "proc", "thr", "id2", 0, 3*time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if m["cat"] != "cat" {
			t.Errorf("cat = %v", m["cat"])
		}
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	sim := vtime.New()
	tr := New(sim)
	tr.SpanAt("rpc", "call:x", "hostA", "flow1", "c1", time.Millisecond, 3*time.Millisecond)
	tr.Instant("transport", "recv", "hostB", "flow2", "")
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
		if ev.Ph != "M" && ev.Pid == 0 {
			t.Errorf("event %q has pid 0", ev.Name)
		}
	}
	// 2 process_name + 2 thread_name metadata, one span, one instant.
	if byPh["M"] != 4 || byPh["X"] != 1 || byPh["i"] != 1 {
		t.Errorf("phase counts = %v, want M:4 X:1 i:1", byPh)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if ev.Ts != 1000 || ev.Dur != 2000 {
				t.Errorf("span ts/dur = %v/%v µs, want 1000/2000", ev.Ts, ev.Dur)
			}
		}
	}
}

// The exported byte streams are identical however the events were appended.
func TestExportByteDeterminism(t *testing.T) {
	build := func(reverse bool) *Tracer {
		sim := vtime.New()
		tr := New(sim)
		evs := []Event{
			{At: time.Millisecond, Cat: "a", Name: "one", Proc: "p1", Thr: "t1"},
			{At: time.Millisecond, Cat: "a", Name: "two", Proc: "p2", Thr: "t2", Dur: time.Millisecond},
			{At: 2 * time.Millisecond, Cat: "b", Name: "three", Proc: "p1", Thr: "t1", Args: []Arg{{"k", "v"}}},
		}
		if reverse {
			for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
				evs[i], evs[j] = evs[j], evs[i]
			}
		}
		for _, ev := range evs {
			tr.Emit(ev)
		}
		return tr
	}
	var a, b, ca, cb bytes.Buffer
	build(false).WriteJSONL(&a)
	build(true).WriteJSONL(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSONL export depends on append order")
	}
	build(false).WriteChromeTrace(&ca)
	build(true).WriteChromeTrace(&cb)
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Error("Chrome export depends on append order")
	}
}

// A Tracer satisfies gram.PhaseRecorder via Add, and DeriveTimeline projects
// span events back into a metrics.Timeline equivalent to direct recording.
func TestPhaseRecorderAndDeriveTimeline(t *testing.T) {
	sim := vtime.New()
	tr := New(sim)
	tr.Add("gram", "authentication", 0, 500*time.Millisecond)
	tr.Add("sj1", "submit", 500*time.Millisecond, 700*time.Millisecond)
	tl := DeriveTimeline(sim, tr.Events(), "phase")
	spans := tl.Spans()
	if len(spans) != 2 {
		t.Fatalf("derived spans = %d, want 2", len(spans))
	}
	if spans[0].Actor != "gram" || spans[0].Phase != "authentication" || spans[0].End != 500*time.Millisecond {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Actor != "sj1" || spans[1].Phase != "submit" {
		t.Errorf("span 1 = %+v", spans[1])
	}
	// Category filter excludes everything else.
	tr.Instant("other", "noise", "p", "t", "")
	if got := len(DeriveTimeline(sim, tr.Events(), "phase").Spans()); got != 2 {
		t.Errorf("filtered spans = %d, want 2", got)
	}
}
