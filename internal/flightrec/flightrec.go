// Package flightrec is the always-on black box of the co-allocation stack:
// a bounded-memory flight recorder that mirrors the live trace stream into
// per-component ring buffers and, on a trigger (watchdog abort, orphan
// record, replica crash, SLO breach, DST invariant violation), freezes the
// recent past into a deterministic JSONL dump.
//
// The recorder attaches to the tracer as a trace.Tap, so it sees every
// event every layer emits without any layer knowing it exists. The record
// path is allocation-free: each component (trace category) owns a fixed
// circular buffer sized at construction, and recording is a mutex-guarded
// array write — the same always-on cost profile as metrics.Histogram.Record.
//
// # Determinism
//
// Two runs with the same seed must produce byte-identical dumps, yet
// within one virtual instant simulated processes run as real goroutines
// and their events arrive in racy order. The recorder therefore never
// lets the racy part of the stream influence what it retains:
//
//   - Every entry is stamped with the virtual time it was seen, captured
//     under the ring lock, so each ring's entries are monotone in seen-time.
//   - Eviction only ever drops the oldest *whole instant* of a ring, and
//     only counts entries from *sealed* instants (instants strictly older
//     than the newest seen time) against the ring's retention capacity.
//     How many events of the current, still-racing instant have arrived is
//     thus irrelevant to what older history survives.
//   - A dump taken at trigger time t snapshots only entries seen strictly
//     before t and re-applies the same whole-instant retention rule, so the
//     dump is identical whether zero or many same-instant events raced in
//     ahead of the trigger.
//
// The guarantee holds as long as no single component emits more than the
// ring capacity within one virtual instant; such a burst physically cannot
// fit and forces entry-granular eviction (counted in Overflows).
package flightrec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"cogrid/internal/trace"
	"cogrid/internal/vtime"
)

// Options configures a Recorder. Zero values select the defaults.
type Options struct {
	// RingCap is the per-component retention capacity in events
	// (default 512). Each ring physically holds 2x this so the current
	// instant can race ahead without evicting sealed history.
	RingCap int
	// MaxDumps bounds retained dumps (default 16). The first failures
	// are the interesting ones, so later triggers beyond the bound are
	// counted but not kept.
	MaxDumps int
}

func (o *Options) fill() {
	if o.RingCap <= 0 {
		o.RingCap = 512
	}
	if o.MaxDumps <= 0 {
		o.MaxDumps = 16
	}
}

// Dump is one frozen black box: the retained recent events of every
// component at trigger time, in deterministic trace order.
type Dump struct {
	// At is the virtual trigger time; only events seen strictly before
	// it are included.
	At time.Duration
	// Trigger identifies the trigger kind, optionally "kind:qualifier"
	// (e.g. "slo:broker-drop-storm"). Kind selects the dump counter.
	Trigger string
	// Detail is free-form deterministic context (job id, replica name).
	Detail string
	// Events is the retained window sorted by trace.Sort.
	Events []trace.Event
}

// Kind returns the trigger kind: the part of Trigger before the first ':'.
func (d Dump) Kind() string {
	if i := strings.IndexByte(d.Trigger, ':'); i >= 0 {
		return d.Trigger[:i]
	}
	return d.Trigger
}

type entry struct {
	ev   trace.Event
	seen time.Duration
}

// ring is one component's fixed circular deque. All fields are guarded by
// mu; seen stamps are taken under mu so entries are monotone in seen.
type ring struct {
	mu   sync.Mutex
	buf  []entry // fixed at 2*cap
	head int     // index of oldest entry
	n    int     // live entries
	// sealed counts entries (from head) whose seen < lastSeen; only they
	// are charged against the retention capacity.
	sealed    int
	lastSeen  time.Duration
	overflows int64 // single-instant bursts that forced entry-granular drops
}

// Recorder is the flight recorder. A nil *Recorder is a valid no-op for
// every method, so untraced paths need no guards.
type Recorder struct {
	sim  *vtime.Sim
	opts Options

	rmu   sync.RWMutex
	rings map[string]*ring

	dmu     sync.Mutex
	dumps   []Dump
	skipped int64 // triggers beyond MaxDumps

	ctrs *trace.Counters
}

// New creates a recorder stamping entries with sim's virtual clock.
func New(sim *vtime.Sim, opts Options) *Recorder {
	opts.fill()
	return &Recorder{sim: sim, opts: opts, rings: make(map[string]*ring)}
}

// SetCounters attaches a counter registry; each trigger then increments
// flightrec.dump.<kind> (and flightrec.dump.skip when beyond MaxDumps).
func (r *Recorder) SetCounters(c *trace.Counters) {
	if r != nil {
		r.ctrs = c
	}
}

func (r *Recorder) ring(cat string) *ring {
	r.rmu.RLock()
	rg, ok := r.rings[cat]
	r.rmu.RUnlock()
	if ok {
		return rg
	}
	r.rmu.Lock()
	defer r.rmu.Unlock()
	if rg, ok = r.rings[cat]; ok {
		return rg
	}
	rg = &ring{buf: make([]entry, 2*r.opts.RingCap)}
	r.rings[cat] = rg
	return rg
}

// Record mirrors one trace event into its component's ring. Nil-safe and
// allocation-free once the component's ring exists (a component's first
// event allocates its fixed buffer).
func (r *Recorder) Record(ev trace.Event) {
	if r == nil {
		return
	}
	rg := r.ring(ev.Cat)
	rg.mu.Lock()
	rg.push(entry{ev: ev, seen: r.sim.Now()}, r.opts.RingCap)
	rg.mu.Unlock()
}

// push appends e, evicting at whole-instant granularity so that retained
// history never depends on same-instant arrival races. Caller holds rg.mu.
func (rg *ring) push(e entry, cap int) {
	if e.seen > rg.lastSeen {
		// A new instant begins: everything currently buffered is sealed.
		rg.lastSeen = e.seen
		rg.sealed = rg.n
	}
	if rg.n == len(rg.buf) {
		// Physically full. If anything is sealed, drop the oldest whole
		// instant; otherwise one giant instant fills the ring and we must
		// fall back to entry-granular eviction (nondeterministic window,
		// counted so tests can assert it never happens under normal load).
		if rg.sealed > 0 {
			rg.dropOldestInstant()
		} else {
			rg.buf[rg.head] = entry{}
			rg.head = (rg.head + 1) % len(rg.buf)
			rg.n--
			rg.overflows++
		}
	}
	rg.buf[(rg.head+rg.n)%len(rg.buf)] = e
	rg.n++
	// Retention rule: at most cap sealed entries, trimmed oldest-whole-
	// instant first. Current-instant entries ride in the slack half.
	for rg.sealed > cap {
		rg.dropOldestInstant()
	}
}

// dropOldestInstant evicts every entry of the oldest seen-instant. The
// oldest instant is sealed whenever sealed > 0. Caller holds rg.mu.
func (rg *ring) dropOldestInstant() {
	t0 := rg.buf[rg.head].seen
	for rg.n > 0 && rg.buf[rg.head].seen == t0 {
		rg.buf[rg.head] = entry{}
		rg.head = (rg.head + 1) % len(rg.buf)
		rg.n--
		if rg.sealed > 0 {
			rg.sealed--
		}
	}
}

// window returns the retained events seen strictly before at, re-applying
// the whole-instant retention rule so the result does not depend on how
// many at-instant events raced in before the trigger: the newest pre-at
// instant B is kept whole, then older whole instants are kept newest-first
// while the non-B total stays within cap - len(B).
func (rg *ring) window(at time.Duration, cap int) []trace.Event {
	rg.mu.Lock()
	pre := make([]entry, 0, rg.n)
	for i := 0; i < rg.n; i++ {
		e := rg.buf[(rg.head+i)%len(rg.buf)]
		if e.seen < at {
			pre = append(pre, e)
		}
	}
	rg.mu.Unlock()
	if len(pre) == 0 {
		return nil
	}
	b := pre[len(pre)-1].seen
	i := len(pre)
	for i > 0 && pre[i-1].seen == b {
		i--
	}
	budget := cap - (len(pre) - i)
	j := i
	for j > 0 {
		t := pre[j-1].seen
		k := j
		for k > 0 && pre[k-1].seen == t {
			k--
		}
		if i-k > budget {
			break
		}
		j = k
	}
	out := make([]trace.Event, 0, len(pre)-j)
	for _, e := range pre[j:] {
		out = append(out, e.ev)
	}
	return out
}

// Snapshot returns every component's retained events seen strictly before
// at, in deterministic trace order. Nil-safe.
func (r *Recorder) Snapshot(at time.Duration) []trace.Event {
	if r == nil {
		return nil
	}
	r.rmu.RLock()
	rings := make([]*ring, 0, len(r.rings))
	for _, rg := range r.rings {
		rings = append(rings, rg)
	}
	r.rmu.RUnlock()
	var out []trace.Event
	for _, rg := range rings {
		out = append(out, rg.window(at, r.opts.RingCap)...)
	}
	trace.Sort(out)
	return out
}

// Trigger freezes the black box: it snapshots every ring as of now and
// retains the dump (up to MaxDumps). Returns the dump. Nil-safe.
func (r *Recorder) Trigger(trigger, detail string) Dump {
	if r == nil {
		return Dump{}
	}
	at := r.sim.Now()
	d := Dump{At: at, Trigger: trigger, Detail: detail, Events: r.Snapshot(at)}
	kind := d.Kind()
	r.dmu.Lock()
	if len(r.dumps) < r.opts.MaxDumps {
		r.dumps = append(r.dumps, d)
		r.ctrs.Add(trace.Key("flightrec", "dump", kind, ""), 1)
	} else {
		r.skipped++
		r.ctrs.Add(trace.Key("flightrec", "dump", "skip", ""), 1)
	}
	r.dmu.Unlock()
	return d
}

// Dumps returns the retained dumps sorted by (At, Trigger, Detail) — the
// deterministic order for export and assertions. Nil-safe.
func (r *Recorder) Dumps() []Dump {
	if r == nil {
		return nil
	}
	r.dmu.Lock()
	out := make([]Dump, len(r.dumps))
	copy(out, r.dumps)
	r.dmu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Trigger != out[j].Trigger {
			return out[i].Trigger < out[j].Trigger
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// Skipped returns how many triggers arrived after MaxDumps was reached.
func (r *Recorder) Skipped() int64 {
	if r == nil {
		return 0
	}
	r.dmu.Lock()
	defer r.dmu.Unlock()
	return r.skipped
}

// Overflows returns how many entries were evicted at entry granularity
// because a single instant overfilled a ring — the one case the
// determinism guarantee excludes. Zero under normal load.
func (r *Recorder) Overflows() int64 {
	if r == nil {
		return 0
	}
	r.rmu.RLock()
	defer r.rmu.RUnlock()
	var n int64
	for _, rg := range r.rings {
		rg.mu.Lock()
		n += rg.overflows
		rg.mu.Unlock()
	}
	return n
}

// dumpHeader is the first JSONL line of a serialized dump.
type dumpHeader struct {
	Flightrec string `json:"flightrec"`
	Trigger   string `json:"trigger"`
	Detail    string `json:"detail"`
	AtNs      int64  `json:"at_ns"`
	Events    int    `json:"events"`
}

// WriteDump serializes d as JSONL: one header line, then one line per
// event in trace export format. Byte-identical for identical dumps.
func WriteDump(w io.Writer, d Dump) error {
	hdr, err := json.Marshal(dumpHeader{
		Flightrec: "v1",
		Trigger:   d.Trigger,
		Detail:    d.Detail,
		AtNs:      int64(d.At),
		Events:    len(d.Events),
	})
	if err != nil {
		return err
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return err
	}
	return trace.WriteJSONL(w, d.Events)
}

// ReadDump parses a dump serialized by WriteDump.
func ReadDump(rd io.Reader) (Dump, error) {
	br := bufio.NewReader(rd)
	line, err := br.ReadString('\n')
	if err != nil && (err != io.EOF || line == "") {
		return Dump{}, fmt.Errorf("flightrec: read header: %w", err)
	}
	var hdr dumpHeader
	if err := json.Unmarshal([]byte(line), &hdr); err != nil {
		return Dump{}, fmt.Errorf("flightrec: parse header: %w", err)
	}
	if hdr.Flightrec != "v1" {
		return Dump{}, fmt.Errorf("flightrec: unknown dump version %q", hdr.Flightrec)
	}
	events, err := trace.ReadJSONL(br)
	if err != nil {
		return Dump{}, fmt.Errorf("flightrec: read events: %w", err)
	}
	d := Dump{At: time.Duration(hdr.AtNs), Trigger: hdr.Trigger, Detail: hdr.Detail, Events: events}
	if len(events) != hdr.Events {
		return d, fmt.Errorf("flightrec: header says %d events, got %d", hdr.Events, len(events))
	}
	return d, nil
}

// Validate checks a dump's events for structural well-formedness. A dump
// is a window, not a complete trace, so full causal checks (coverage,
// single-rooted trees, critical-path partition) cannot apply; what must
// hold in any window: deterministic sort order, non-negative times and
// durations, named and categorized events, and no span path without a
// request id.
func Validate(events []trace.Event) error {
	for i, ev := range events {
		if i > 0 && trace.Less(ev, events[i-1]) {
			return fmt.Errorf("event %d out of deterministic trace order", i)
		}
		if ev.At < 0 {
			return fmt.Errorf("event %d (%s/%s): negative timestamp %v", i, ev.Cat, ev.Name, ev.At)
		}
		if ev.Dur < 0 {
			return fmt.Errorf("event %d (%s/%s): negative duration %v", i, ev.Cat, ev.Name, ev.Dur)
		}
		if ev.Cat == "" {
			return fmt.Errorf("event %d (%s): empty category", i, ev.Name)
		}
		if ev.Name == "" {
			return fmt.Errorf("event %d (%s): empty name", i, ev.Cat)
		}
		if ev.Span != "" && ev.Req == "" {
			return fmt.Errorf("event %d (%s/%s): span path %q without request id", i, ev.Cat, ev.Name, ev.Span)
		}
	}
	return nil
}
