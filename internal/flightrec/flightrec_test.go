package flightrec

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"cogrid/internal/trace"
	"cogrid/internal/vtime"
)

// record runs one deterministic-under-race workload: procs concurrent
// simulated processes all emitting into category "cat" (plus a second
// category) at every whole second up to instants, then triggers a dump at
// the final instant + 1s. Within each instant the real-time arrival order
// of events is racy; the dump must not depend on it.
func raceDump(t *testing.T, seed int64, procs, instants, ringCap int) []byte {
	t.Helper()
	sim := vtime.NewSeeded(seed)
	tr := trace.New(sim)
	rec := New(sim, Options{RingCap: ringCap})
	tr.SetTap(rec)
	err := sim.Run("main", func() {
		wg := vtime.NewWaitGroup(sim)
		wg.Add(procs)
		for p := 0; p < procs; p++ {
			p := p
			sim.Go(fmt.Sprintf("proc%d", p), func() {
				defer wg.Done()
				for i := 1; i <= instants; i++ {
					sim.SleepUntil(time.Duration(i) * time.Second)
					tr.Instant("cat", fmt.Sprintf("ev-%02d-%02d", i, p), "host", "thr", "")
					if p == 0 {
						tr.Instant("other", fmt.Sprintf("o-%02d", i), "host", "thr", "")
					}
				}
			})
		}
		wg.Wait()
		sim.Sleep(time.Second)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	d := rec.Trigger("test", "race")
	if v := Validate(d.Events); v != nil {
		t.Fatalf("dump invalid: %v", v)
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatalf("write dump: %v", err)
	}
	if rec.Overflows() != 0 {
		t.Fatalf("unexpected entry-granular overflow: %d", rec.Overflows())
	}
	return buf.Bytes()
}

func TestDumpDeterministicUnderInstantRaces(t *testing.T) {
	// 8 procs per instant, ring of 16: every snapshot must trim older
	// instants at whole-instant granularity, and two identical runs must
	// serialize byte-identically despite racy same-instant arrival.
	a := raceDump(t, 7, 8, 20, 16)
	b := raceDump(t, 7, 8, 20, 16)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed dumps differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestWholeInstantRetention(t *testing.T) {
	sim := vtime.NewSeeded(1)
	rec := New(sim, Options{RingCap: 10})
	err := sim.Run("main", func() {
		// 4 events per instant over 10 instants: capacity 10 holds at most
		// two whole instants (8 events); a third would make 12 > 10.
		for i := 1; i <= 10; i++ {
			sim.SleepUntil(time.Duration(i) * time.Second)
			for k := 0; k < 4; k++ {
				rec.Record(trace.Event{At: sim.Now(), Cat: "c", Name: fmt.Sprintf("e%d-%d", i, k)})
			}
		}
		sim.Sleep(time.Second)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	events := rec.Snapshot(sim.Now())
	if len(events) != 8 {
		t.Fatalf("want 2 whole instants (8 events), got %d: %+v", len(events), events)
	}
	for _, ev := range events {
		if ev.At < 9*time.Second {
			t.Fatalf("stale instant survived: %+v", ev)
		}
	}
}

func TestSnapshotExcludesTriggerInstant(t *testing.T) {
	sim := vtime.NewSeeded(1)
	rec := New(sim, Options{RingCap: 64})
	err := sim.Run("main", func() {
		sim.SleepUntil(time.Second)
		rec.Record(trace.Event{At: sim.Now(), Cat: "c", Name: "before"})
		sim.SleepUntil(2 * time.Second)
		rec.Record(trace.Event{At: sim.Now(), Cat: "c", Name: "same-instant"})
		// A trigger fired at t=2s races with "same-instant": the dump must
		// contain only history strictly before the trigger instant.
		if got := rec.Snapshot(sim.Now()); len(got) != 1 || got[0].Name != "before" {
			panic(fmt.Sprintf("snapshot at trigger instant: %+v", got))
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	sim := vtime.NewSeeded(1)
	rec := New(sim, Options{})
	err := sim.Run("main", func() {
		sim.SleepUntil(time.Second)
		rec.Record(trace.Event{At: sim.Now(), Cat: "broker", Name: "enqueue", Proc: "broker0",
			Req: "r1", Span: "req", Args: []trace.Arg{{Key: "k", Val: "v"}}})
		rec.Record(trace.Event{At: sim.Now(), Cat: "transport", Name: "drop", Proc: "m1"})
		sim.Sleep(time.Second)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	d := rec.Trigger("watchdog-abort", "broker0 b#1")
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Trigger != d.Trigger || got.Detail != d.Detail || got.At != d.At {
		t.Fatalf("header mismatch: %+v vs %+v", got, d)
	}
	if len(got.Events) != len(d.Events) {
		t.Fatalf("events: got %d want %d", len(got.Events), len(d.Events))
	}
	if err := Validate(got.Events); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got.Kind() != "watchdog-abort" {
		t.Fatalf("kind: %q", got.Kind())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		events []trace.Event
		want   string
	}{
		{"out-of-order", []trace.Event{
			{At: 2 * time.Second, Cat: "c", Name: "b"},
			{At: time.Second, Cat: "c", Name: "a"},
		}, "out of deterministic trace order"},
		{"negative-duration", []trace.Event{{At: time.Second, Dur: -1, Cat: "c", Name: "a"}}, "negative duration"},
		{"empty-category", []trace.Event{{At: time.Second, Name: "a"}}, "empty category"},
		{"empty-name", []trace.Event{{At: time.Second, Cat: "c"}}, "empty name"},
		{"span-without-req", []trace.Event{{At: time.Second, Cat: "c", Name: "a", Span: "req/x"}}, "without request id"},
	}
	for _, tc := range cases {
		err := Validate(tc.events)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := Validate(nil); err != nil {
		t.Errorf("empty dump should validate: %v", err)
	}
}

func TestMaxDumpsAndCounters(t *testing.T) {
	sim := vtime.NewSeeded(1)
	ctrs := trace.NewCounters()
	rec := New(sim, Options{MaxDumps: 2})
	rec.SetCounters(ctrs)
	rec.Trigger("slo:rule-a", "one")
	rec.Trigger("orphan", "two")
	rec.Trigger("orphan", "three")
	if got := len(rec.Dumps()); got != 2 {
		t.Fatalf("dumps: got %d want 2", got)
	}
	if rec.Skipped() != 1 {
		t.Fatalf("skipped: got %d want 1", rec.Skipped())
	}
	if got := ctrs.Get("flightrec.dump.slo"); got != 1 {
		t.Fatalf("slo dump counter: %d", got)
	}
	if got := ctrs.Get("flightrec.dump.orphan"); got != 1 {
		t.Fatalf("orphan dump counter: %d", got)
	}
	if got := ctrs.Get("flightrec.dump.skip"); got != 1 {
		t.Fatalf("skip counter: %d", got)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var rec *Recorder
	rec.Record(trace.Event{Cat: "c", Name: "n"})
	rec.Trigger("x", "y")
	if rec.Dumps() != nil || rec.Snapshot(time.Second) != nil || rec.Skipped() != 0 || rec.Overflows() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

// TestRecordAllocs pins the allocation-free record path: after a
// component's ring exists, Record never allocates.
func TestRecordAllocs(t *testing.T) {
	sim := vtime.NewSeeded(1)
	rec := New(sim, Options{RingCap: 64})
	ev := trace.Event{At: 0, Cat: "bench", Name: "ev", Proc: "p", Thr: "t"}
	rec.Record(ev) // create the ring outside the measured region
	if avg := testing.AllocsPerRun(1000, func() { rec.Record(ev) }); avg != 0 {
		t.Fatalf("Record allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkRecord is the satellite's testing.B proof: steady-state record
// is 0 allocs/op.
func BenchmarkRecord(b *testing.B) {
	sim := vtime.NewSeeded(1)
	rec := New(sim, Options{RingCap: 512})
	ev := trace.Event{At: 0, Cat: "bench", Name: "ev", Proc: "p", Thr: "t",
		Args: []trace.Arg{{Key: "k", Val: "v"}}}
	rec.Record(ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(ev)
	}
}
