// Mpi runs a grid-spanning MPI job the MPICH-G way (paper Section 4.3):
// the application only calls mpig.Init — all DUROC calls are hidden in
// the library — and computes a distributed dot product across three
// machines with point-to-point halo exchanges and an AllReduce.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mpig"
)

const (
	vectorLen = 1 << 16
	procsPer  = 4
)

func main() {
	g := grid.New(grid.Options{})
	machines := []string{"anl", "ncsa", "sdsc"}
	for _, name := range machines {
		g.AddMachine(name, 64, lrm.Fork)
	}
	g.RegisterEverywhere("dot", dotProduct)

	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		log.Fatal(err)
	}
	var req core.Request
	for _, name := range machines {
		req.Subjobs = append(req.Subjobs, core.SubjobSpec{
			Label: name, Contact: g.Contact(name), Count: procsPer,
			Executable: "dot", Type: core.Required,
		})
	}
	err = g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(req)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := job.Commit(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MPI world: %d ranks over %d machines, formed at t=%v\n",
			cfg.WorldSize, cfg.NSubjobs, g.Sim.Now())
		job.Done().Wait()
		fmt.Printf("job complete at t=%v\n", g.Sim.Now())
		g.Sim.Sleep(time.Second)
	})
	if err != nil {
		log.Fatal(err)
	}
}

// dotProduct: each rank owns a slice of two synthetic vectors, computes
// its partial dot product, verifies neighbor connectivity with a halo
// exchange, and AllReduces the total.
func dotProduct(p *lrm.Proc) error {
	comm, err := mpig.Init(p)
	if err != nil {
		return err
	}
	defer comm.Finalize()

	rank, size := comm.Rank(), comm.Size()
	chunk := vectorLen / size
	lo := rank * chunk
	hi := lo + chunk
	if rank == size-1 {
		hi = vectorLen
	}
	var partial int64
	for i := lo; i < hi; i++ {
		a := int64(i%97 + 1)
		b := int64(i%89 + 1)
		partial += a * b
	}

	// Halo exchange: send the boundary value right, receive from left.
	if size > 1 {
		right := (rank + 1) % size
		left := (rank - 1 + size) % size
		payload, _ := json.Marshal(hi - 1)
		if err := comm.Send(right, 1, payload); err != nil {
			return err
		}
		got, err := comm.Recv(left, 1)
		if err != nil {
			return err
		}
		var leftBoundary int
		json.Unmarshal(got, &leftBoundary)
		wantBoundary := lo - 1
		if rank == 0 {
			wantBoundary = vectorLen - 1
		}
		if leftBoundary != wantBoundary {
			return fmt.Errorf("rank %d: halo got %d, want %d", rank, leftBoundary, wantBoundary)
		}
	}

	total, err := comm.AllReduceInt(partial, func(a, b int64) int64 { return a + b })
	if err != nil {
		return err
	}
	if rank == 0 {
		// Check against a serial computation.
		var want int64
		for i := 0; i < vectorLen; i++ {
			want += int64(i%97+1) * int64(i%89+1)
		}
		status := "MATCHES"
		if total != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
		}
		fmt.Printf("distributed dot product over %d ranks (subjob-major): %d — %s\n", size, total, status)
	}
	return comm.Barrier()
}
