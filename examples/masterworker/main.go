// Masterworker reproduces the paper's Figure 1 scenario: a master/worker
// computation described in RSL, with the master required and the workers
// interactive. One worker machine is dead and one is pathologically slow;
// the agent substitutes the dead one from a spare and drops the slow one,
// proceeding with reduced fidelity — exactly the Section 2 narrative.
package main

import (
	"fmt"
	"log"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/rsl"
	"cogrid/internal/transport"
)

// request is the Figure 1 RSL, with contacts for this grid.
const request = `+(&(resourceManagerContact=rm1:gram)(count=1)(executable=master)
   (subjobStartType=required)(label=master))
  (&(resourceManagerContact=rm2:gram)(count=4)(executable=worker)
   (subjobStartType=interactive)(label=workers-a))
  (&(resourceManagerContact=rm3:gram)(count=4)(executable=worker)
   (subjobStartType=interactive)(label=workers-b))
  (&(resourceManagerContact=rm4:gram)(count=4)(executable=worker)
   (subjobStartType=interactive)(label=workers-c))`

func main() {
	g := grid.New(grid.Options{Seed: 3})
	for _, name := range []string{"rm1", "rm2", "rm3", "rm4", "rm5"} {
		g.AddMachine(name, 32, lrm.Fork)
	}
	// rm3 is down; rm4 takes forever to start anything.
	g.Machine("rm3").SetDown(true)
	g.Machine("rm4").SetSlowFactor(10000)

	g.RegisterEverywhere("master", app("master"))
	g.RegisterEverywhere("worker", app("worker"))

	node := rsl.MustParse(request)
	fmt.Println("submitting the Figure 1 request:")
	fmt.Println(rsl.Format(node))
	req, err := core.ParseRequest(request)
	if err != nil {
		log.Fatal(err)
	}
	for i := range req.Subjobs {
		req.Subjobs[i].StartupTimeout = 90 * time.Second
	}

	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		log.Fatal(err)
	}

	err = g.Sim.Run("agent", func() {
		res, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{
			Pool:              []transport.Addr{g.Contact("rm5")},
			DropUnreplaceable: true, // proceed at reduced fidelity
		})
		if err != nil {
			log.Fatalf("co-allocation failed: %v", err)
		}
		fmt.Printf("\ncommitted at t=%v with %d workers (%d substituted, %d dropped):\n",
			g.Sim.Now(), res.Config.WorldSize-1, res.Substitutions, res.Deleted)
		for _, info := range res.Job.Status() {
			fmt.Printf("  %-12s %-10s %s\n", info.Spec.Label, info.Status, info.Reason)
		}
		res.Job.Done().Wait()
		fmt.Printf("\ncomputation finished at t=%v\n", g.Sim.Now())
		g.Sim.Sleep(time.Second)
	})
	if err != nil {
		log.Fatal(err)
	}
}

// app builds the master or worker executable: the master collects one
// result from every worker in the committed configuration.
func app(role string) lrm.ExecFunc {
	return func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		cfg, err := rt.Barrier(true, "", 0)
		if err != nil {
			return nil
		}
		if role == "master" {
			workers := cfg.WorldSize - 1
			fmt.Printf("master up with %d workers across %d subjobs\n", workers, cfg.NSubjobs-1)
			for i := 0; i < workers; i++ {
				conn, ok := rt.Listener().Accept()
				if !ok {
					return fmt.Errorf("master listener closed")
				}
				msg, err := conn.Recv()
				if err != nil {
					return err
				}
				fmt.Printf("master received %s\n", msg)
				conn.Close()
			}
			return nil
		}
		// Workers: simulate a task, then report to rank 0 (the master).
		if err := p.Work(5*time.Second, time.Second); err != nil {
			return err
		}
		conn, err := rt.DialRank(0)
		if err != nil {
			return err
		}
		defer conn.Close()
		return conn.Send([]byte(fmt.Sprintf("result from rank %d (subjob %d)", cfg.MyRank, cfg.MySubjob)))
	}
}
