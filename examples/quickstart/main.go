// Quickstart: build a two-machine grid, co-allocate processes on both
// through DUROC, and let them exchange a message — the smallest complete
// use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

func main() {
	// A grid is a simulated network with a client workstation, a NIS
	// server, and GRAM-fronted machines.
	g := grid.New(grid.Options{})
	g.AddMachine("mercury", 64, lrm.Fork)
	g.AddMachine("venus", 64, lrm.Fork)

	// The application executable, registered on every machine. Each
	// process attaches to the co-allocation, passes the barrier, and
	// greets its right-hand neighbor through the address book.
	g.RegisterEverywhere("hello", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		cfg, err := rt.Barrier(true, "", 0)
		if err != nil {
			return nil // co-allocation aborted before commit
		}
		next := (cfg.MyRank + 1) % cfg.WorldSize
		conn, err := rt.DialRank(next)
		if err != nil {
			return err
		}
		defer conn.Close()
		msg := fmt.Sprintf("hello rank %d, this is rank %d (subjob %d)", next, cfg.MyRank, cfg.MySubjob)
		if err := conn.Send([]byte(msg)); err != nil {
			return err
		}
		// Receive the greeting from the left-hand neighbor.
		peer, ok := rt.Listener().Accept()
		if !ok {
			return fmt.Errorf("listener closed")
		}
		got, err := peer.Recv()
		if err != nil {
			return err
		}
		fmt.Printf("rank %d received: %s\n", cfg.MyRank, got)
		return nil
	})

	// The co-allocation agent runs on the workstation.
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		log.Fatal(err)
	}

	err = g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Label: "mercury", Contact: g.Contact("mercury"), Count: 2, Executable: "hello", Type: core.Required},
			{Label: "venus", Contact: g.Contact("venus"), Count: 2, Executable: "hello", Type: core.Required},
		}})
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := job.Commit(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed: %d subjobs, %d processes, at simulated t=%v\n",
			cfg.NSubjobs, cfg.WorldSize, g.Sim.Now())
		job.Done().Wait()
		fmt.Printf("all processes finished at simulated t=%v\n", g.Sim.Now())
		// Give the final prints' deliveries a beat to settle.
		g.Sim.Sleep(time.Second)
	})
	if err != nil {
		log.Fatal(err)
	}
}
