// Bigrun replays the paper's flagship DUROC experience (Section 4.3): the
// start of a 1386-processor distributed interactive simulation across 13
// parallel machines at 9 sites, in the presence of machine, network, and
// application failures that DUROC configures around.
package main

import (
	"fmt"

	"cogrid/internal/experiments"
)

func main() {
	fmt.Println("starting 1386 processes on 13 machines across 9 sites...")
	res := experiments.BigRun(5)
	if res.StartTime == 0 {
		fmt.Println("the run failed to start:")
		for _, line := range res.Narrative {
			fmt.Println("  " + line)
		}
		return
	}
	fmt.Printf("committed at simulated t=%v: %d subjobs, %d of %d processors\n",
		res.StartTime, res.Subjobs, res.CommittedPE, res.RequestedPE)
	fmt.Printf("failures configured around (%d substituted, %d dropped):\n",
		res.Substitutions, res.Deleted)
	for _, line := range res.Narrative {
		fmt.Println("  " + line)
	}
	fmt.Println("\nthe same start performed manually took 'literally tens of minutes'")
	fmt.Println("per attempt in 1998 — and an atomic co-allocator would have restarted")
	fmt.Println("the whole ensemble three times.")
}
