// Instrument reproduces the paper's supercomputer-enhanced-instrument
// scenario (reference [27]: real-time analysis of microtomography
// experiments at a photon source): a beamline instrument is required, a
// farm of reconstruction workers is interactive, and display devices are
// optional — they "join the computation as and when they become active",
// and their failure is ignored by the commitment procedure.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
)

const frames = 12

type msg struct {
	Type  string `json:"type"` // "frame", "recon", "display-join", "summary"
	Seq   int    `json:"seq,omitempty"`
	From  int    `json:"from,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
}

func send(conn *transport.Conn, m msg) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return conn.Send(raw)
}

func recv(conn *transport.Conn, timeout time.Duration) (msg, error) {
	raw, err := conn.RecvTimeout(timeout)
	if err != nil {
		return msg{}, err
	}
	var m msg
	return m, json.Unmarshal(raw, &m)
}

func main() {
	// Trace the whole run: every layer (transport, rpc, gram, duroc) plus
	// the application's own spans below share one event stream.
	g := grid.New(grid.Options{Seed: 11, Trace: true})
	g.AddMachine("aps-beamline", 4, lrm.Fork) // the instrument's control host
	for _, name := range []string{"recon1", "recon2", "recon3"} {
		g.AddMachine(name, 32, lrm.Fork)
	}
	g.AddMachine("cave-display", 4, lrm.Fork)   // joins late (slow startup)
	g.AddMachine("office-display", 4, lrm.Fork) // dead: optional, ignored
	g.Machine("cave-display").SetSlowFactor(20) // ~15s startup
	g.Machine("office-display").SetDown(true)   // never starts
	g.Machine("recon2").SetDown(true)           // interactive: substituted
	g.AddMachine("spare-recon", 32, lrm.Fork)   // substitution target

	g.RegisterEverywhere("instrument", instrument)
	g.RegisterEverywhere("recon", recon)
	g.RegisterEverywhere("display", display)

	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred, Registry: g.Registry,
	})
	if err != nil {
		log.Fatal(err)
	}
	req := core.Request{Subjobs: []core.SubjobSpec{
		{Label: "beamline", Contact: g.Contact("aps-beamline"), Count: 1,
			Executable: "instrument", Type: core.Required},
		{Label: "recon1", Contact: g.Contact("recon1"), Count: 4,
			Executable: "recon", Type: core.Interactive, StartupTimeout: time.Minute},
		{Label: "recon2", Contact: g.Contact("recon2"), Count: 4,
			Executable: "recon", Type: core.Interactive, StartupTimeout: time.Minute},
		{Label: "recon3", Contact: g.Contact("recon3"), Count: 4,
			Executable: "recon", Type: core.Interactive, StartupTimeout: time.Minute},
		{Label: "cave", Contact: g.Contact("cave-display"), Count: 1,
			Executable: "display", Type: core.Optional},
		{Label: "office", Contact: g.Contact("office-display"), Count: 1,
			Executable: "display", Type: core.Optional},
	}}

	err = g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(req)
		if err != nil {
			log.Fatal(err)
		}
		// Service interactive failures by substitution; ignore optional ones.
		g.Sim.Go("fixer", func() {
			for {
				ev, ok := job.Events().Recv()
				if !ok {
					return
				}
				if ev.Kind == core.EvSubjobFailed {
					fmt.Printf("[agent] subjob %s (%s) failed: %s\n", ev.Label, ev.Type, ev.Reason)
					if ev.Type == core.Interactive {
						spec := req.Subjobs[2]
						spec.Label = "spare-recon"
						spec.Contact = g.Contact("spare-recon")
						if err := job.Substitute(ev.Label, spec); err != nil {
							fmt.Printf("[agent] substitute: %v\n", err)
						} else {
							fmt.Println("[agent] substituted spare-recon for", ev.Label)
						}
					}
				}
			}
		})
		cfg, err := job.Commit(0)
		if err != nil {
			log.Fatalf("commit: %v", err)
		}
		fmt.Printf("[agent] committed: %d subjobs, %d processes (displays pending: optional)\n",
			cfg.NSubjobs, cfg.WorldSize)
		job.Done().Wait()
		fmt.Printf("[agent] experiment finished at t=%v\n", g.Sim.Now())
		g.Sim.Sleep(2 * time.Second)
	})
	if err != nil {
		log.Fatal(err)
	}

	// The trace stream now holds the whole story. Render the co-allocation
	// and application phases as a timeline, print the headline counters,
	// and save the full Chrome trace for chrome://tracing / Perfetto.
	fmt.Println("\nco-allocation and application timeline (derived from trace):")
	fmt.Print(trace.DeriveTimeline(g.Sim, g.Tracer.Events(), "duroc", "app").Render(96))

	fmt.Println("\nheadline counters:")
	for _, cv := range g.Counters.Snapshot() {
		switch {
		case len(cv.Name) >= 6 && cv.Name[:6] == "duroc.",
			len(cv.Name) >= 5 && cv.Name[:5] == "gram.",
			len(cv.Name) >= 4 && cv.Name[:4] == "app.":
			fmt.Printf("  %-40s %d\n", cv.Name, cv.Value)
		}
	}

	const traceFile = "instrument-trace.json"
	f, err := os.Create(traceFile)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := g.Tracer.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull trace (%d events) written to %s — open in chrome://tracing\n",
		g.Tracer.Len(), traceFile)
}

// instrument is rank 0: it streams frames to the reconstruction workers,
// collects results, and serves display devices whenever they join.
func instrument(p *lrm.Proc) error {
	rt, err := core.Attach(p)
	if err != nil {
		return err
	}
	defer rt.Close()
	cfg, err := rt.Barrier(true, "", 0)
	if err != nil {
		return nil
	}
	workers := cfg.WorldSize - 1
	fmt.Printf("[instrument] online with %d reconstruction workers\n", workers)
	tr := p.Host().Network().Tracer()

	// Stream frames round-robin.
	conns := make([]*transport.Conn, workers)
	for i := 0; i < workers; i++ {
		conn, err := rt.DialRank(i + 1)
		if err != nil {
			return err
		}
		conns[i] = conn
		defer conn.Close()
	}
	streamStart := tr.Now()
	for seq := 0; seq < frames; seq++ {
		if err := p.Sleep(time.Second); err != nil { // beam exposure
			return err
		}
		if err := send(conns[seq%workers], msg{Type: "frame", Seq: seq}); err != nil {
			return err
		}
	}
	tr.Span("app", "stream", p.Host().Name(), "instrument", "", streamStart,
		trace.Arg{Key: "frames", Val: strconv.Itoa(frames)})
	for i := range conns {
		if err := send(conns[i], msg{Type: "frame", Seq: -1}); err != nil { // end of run
			return err
		}
	}

	// Collect reconstructions and serve displays until the run is done.
	collectStart := tr.Now()
	done := 0
	for done < frames {
		conn, ok := rt.Listener().Accept()
		if !ok {
			return fmt.Errorf("instrument listener closed")
		}
		m, err := recv(conn, time.Minute)
		if err != nil {
			conn.Close()
			continue
		}
		switch m.Type {
		case "recon":
			done++
			conn.Close()
		case "display-join":
			fmt.Printf("[instrument] display joined at t=%v: sending status (%d/%d frames)\n",
				p.Sim().Now(), done, frames)
			send(conn, msg{Type: "summary", Done: done, Total: frames})
			conn.Close()
		}
	}
	tr.Span("app", "collect", p.Host().Name(), "instrument", "", collectStart,
		trace.Arg{Key: "frames", Val: strconv.Itoa(done)})
	fmt.Printf("[instrument] run complete: %d frames reconstructed\n", done)
	return nil
}

// recon workers receive frames from the instrument, reconstruct, and
// report back.
func recon(p *lrm.Proc) error {
	rt, err := core.Attach(p)
	if err != nil {
		return err
	}
	defer rt.Close()
	if _, err := rt.Barrier(true, "", 0); err != nil {
		return nil
	}
	conn, ok := rt.Listener().Accept()
	if !ok {
		return fmt.Errorf("recon listener closed")
	}
	defer conn.Close()
	net := p.Host().Network()
	for {
		m, err := recv(conn, 5*time.Minute)
		if err != nil {
			return err
		}
		if m.Type != "frame" || m.Seq < 0 {
			return nil
		}
		reconStart := net.Tracer().Now()
		if err := p.Sleep(2 * time.Second); err != nil { // reconstruction
			return err
		}
		net.Tracer().Span("app", "reconstruct", p.Host().Name(), "recon", "", reconStart,
			trace.Arg{Key: "seq", Val: strconv.Itoa(m.Seq)})
		net.Counters().Add(trace.Key("app", "frames", "recon", p.Host().Name()), 1)
		back, err := rt.DialRank(0)
		if err != nil {
			return err
		}
		send(back, msg{Type: "recon", Seq: m.Seq})
		back.Close()
	}
}

// display devices are optional late joiners: MyRank is -1, but the
// committed address book still names the instrument.
func display(p *lrm.Proc) error {
	rt, err := core.Attach(p)
	if err != nil {
		return err
	}
	defer rt.Close()
	cfg, err := rt.Barrier(true, "", 0)
	if err != nil {
		return nil
	}
	if cfg.MyRank != -1 {
		fmt.Println("[display] unexpectedly part of the static world")
	}
	addr, err := transport.ParseAddr(cfg.AddressBook[0])
	if err != nil {
		return err
	}
	conn, err := p.Host().Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := send(conn, msg{Type: "display-join"}); err != nil {
		return err
	}
	m, err := recv(conn, time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("[display] showing reconstruction progress: %d/%d frames\n", m.Done, m.Total)
	return nil
}
