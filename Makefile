GO ?= go

.PHONY: check quick vet build test race bench-smoke chaos-smoke trace-smoke dst-smoke fed-smoke wire-smoke slo-smoke scale-smoke cover bench-snapshot bench-check

# The full verification gate (vet, build, test, race test).
check:
	sh scripts/check.sh

# The same gate in -short mode: skips soak/stress tests.
quick:
	QUICK=1 sh scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A seconds-scale broker load study on the tiny seed configuration —
# a fast end-to-end smoke of the broker service and its reporting.
bench-smoke:
	$(GO) run ./cmd/benchgrid -fig none -app broker -smoke

# A seconds-scale chaos study: faults injected mid-run, exits non-zero
# if any allocation leaks or a recorded orphan is never reaped.
chaos-smoke:
	$(GO) run ./cmd/benchgrid -fig none -app chaos -smoke

# Runs the causal-trace analyzer over a B1 smoke run and exits non-zero
# on any unattributed event, broken request tree, or critical path that
# does not sum exactly to its request's end-to-end latency.
trace-smoke:
	$(GO) run ./cmd/tracegrid -smoke -check

# Deterministic simulation testing: 200 randomized co-allocation
# scenarios checked against the protocol invariant library; exits
# non-zero (with a shrunk, replayable reproduction) on any violation.
# See TESTING.md for the seed-replay workflow.
dst-smoke:
	$(GO) run ./cmd/dstgrid -seeds 200 -smoke

# Federation smoke: 40 randomized multi-replica scenarios (leader and
# follower crashes, elections, shard hand-offs) through the DST
# invariant library, then the 1-vs-2-replica B6 scaling rows — exits
# non-zero if any invariant is violated or the two-replica row fails to
# beat the single replica's throughput at equal tail latency.
fed-smoke:
	$(GO) run ./cmd/dstgrid -fed-seeds 40 -smoke
	$(GO) run ./cmd/benchgrid -fig none -app federation -smoke

# Wire smoke: replays the binary codec's fuzz seed corpus, then runs the
# B3 codec/batching study on a seconds-long configuration — exits
# non-zero unless the binary codec beats JSON on both messages/sec and
# allocs/op with zero drops.
wire-smoke:
	$(GO) test -run FuzzWireEnvelope ./internal/wire
	$(GO) run ./cmd/benchgrid -fig none -app wire -smoke

# SLO smoke: the B7 detection-latency study on the seconds-long chaos
# configuration — exits non-zero unless the fault-free row is completely
# silent (zero alerts, zero flight-recorder dumps) and the faulted row
# pages within the detection budget with one validated black box per fire.
slo-smoke:
	$(GO) run ./cmd/benchgrid -fig none -app slo -smoke

# Scale smoke: the B4 job stream on a seconds-long configuration, run
# twice — once on the reference heap timer engine, once on the production
# timing wheel — exits non-zero if any deterministic virtual-time column
# differs between the engines or any job fails or goes missing.
scale-smoke:
	$(GO) run ./cmd/benchgrid -fig none -app scale -smoke

# Re-measure the performance baseline: full 1s-per-bench suite, the
# deterministic scenarios, and the full-size B4 scale run (minutes of
# wall clock), written to BENCH_grid.json. Commit the result when a perf
# change is intentional.
bench-snapshot:
	$(GO) run ./cmd/perfgrid -out BENCH_grid.json -scale

# Fast perf regression check against the committed baseline: smoke-length
# benches, report-only unless STRICT_BENCH=1 (then >20% ns/op fails).
bench-check:
	$(GO) run ./cmd/perfgrid -smoke -compare BENCH_grid.json

# Total statement coverage across all packages. check.sh warns (but
# does not fail) when the total drops below its floor.
cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1
