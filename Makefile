GO ?= go

.PHONY: check quick vet build test race

# The full verification gate (vet, build, test, race test).
check:
	sh scripts/check.sh

# The same gate in -short mode: skips soak/stress tests.
quick:
	QUICK=1 sh scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
