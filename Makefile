GO ?= go

.PHONY: check quick vet build test race bench-smoke chaos-smoke trace-smoke

# The full verification gate (vet, build, test, race test).
check:
	sh scripts/check.sh

# The same gate in -short mode: skips soak/stress tests.
quick:
	QUICK=1 sh scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A seconds-scale broker load study on the tiny seed configuration —
# a fast end-to-end smoke of the broker service and its reporting.
bench-smoke:
	$(GO) run ./cmd/benchgrid -fig none -app broker -smoke

# A seconds-scale chaos study: faults injected mid-run, exits non-zero
# if any allocation leaks or a recorded orphan is never reaped.
chaos-smoke:
	$(GO) run ./cmd/benchgrid -fig none -app chaos -smoke

# Runs the causal-trace analyzer over a B1 smoke run and exits non-zero
# on any unattributed event, broken request tree, or critical path that
# does not sum exactly to its request's end-to-end latency.
trace-smoke:
	$(GO) run ./cmd/tracegrid -smoke -check
