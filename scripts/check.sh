#!/bin/sh
# check.sh — the full verification gate: vet, build, tests, race tests.
#
# Usage:
#   scripts/check.sh          # everything, including the full -race run
#   QUICK=1 scripts/check.sh  # -short mode for both test passes (skips
#                             # soak/stress tests; suits pre-commit hooks)
set -eu
cd "$(dirname "$0")/.."

short=""
if [ "${QUICK:-0}" = "1" ]; then
    short="-short"
fi

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -shuffle=on $short ./..."
go test -shuffle=on $short ./...

echo "== go test -race -shuffle=on $short ./..."
go test -race -shuffle=on $short ./...

echo "== chaos smoke (leak check)"
go run ./cmd/benchgrid -fig none -app chaos -smoke >/dev/null

echo "== trace smoke (causal-tracing invariants)"
go run ./cmd/tracegrid -smoke -check >/dev/null

echo "== dst smoke (protocol invariants over 200 random scenarios)"
go run ./cmd/dstgrid -seeds 200 -smoke >/dev/null

echo "== fed smoke (federated invariants + replica scaling check)"
go run ./cmd/dstgrid -fed-seeds 40 -smoke >/dev/null
go run ./cmd/benchgrid -fig none -app federation -smoke >/dev/null

echo "== wire smoke (codec fuzz seeds + B3 binary-beats-JSON gate)"
go test -run FuzzWireEnvelope ./internal/wire >/dev/null
go run ./cmd/benchgrid -fig none -app wire -smoke >/dev/null

echo "== slo smoke (zero false positives + bounded detection lag gate)"
go run ./cmd/benchgrid -fig none -app slo -smoke >/dev/null

echo "== scale smoke (heap-vs-wheel dual-engine differential gate)"
go run ./cmd/benchgrid -fig none -app scale -smoke >/dev/null

# Enforced per-package coverage floor for the kernel and the LRM — the
# two packages the million-scale fast paths live in. Unlike the
# report-only total below, a drop here fails the gate: an untested wheel
# level or backfill branch is exactly where a scale regression hides.
kernel_floor=70
echo "== kernel coverage gate (floor: ${kernel_floor}% for internal/vtime, internal/lrm)"
for pkg in ./internal/vtime ./internal/lrm; do
    go test $short -coverprofile=.cover.pkg.out "$pkg" >/dev/null
    pct=$(go tool cover -func=.cover.pkg.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    rm -f .cover.pkg.out
    echo "$pkg statement coverage: ${pct}%"
    if [ "$(printf '%s\n' "$pct" "$kernel_floor" | sort -g | head -1)" != "$kernel_floor" ]; then
        echo "FAIL: $pkg coverage ${pct}% is below the enforced ${kernel_floor}% floor" >&2
        exit 1
    fi
done

if [ "${QUICK:-0}" != "1" ]; then
    # Perf observatory: validate the snapshot shape (>= 8 series, 0
    # allocs/op on the histogram hot path) and compare a short measuring
    # run against the committed BENCH_grid.json baseline. The compare is
    # report-only — wall-clock benches are noisy on shared machines —
    # unless STRICT_BENCH=1 promotes >20% ns/op regressions to failures.
    echo "== perf smoke + bench compare (report-only; STRICT_BENCH=1 to gate)"
    go run ./cmd/perfgrid -smoke -compare BENCH_grid.json

    # Report-only coverage floor: warn when total statement coverage
    # drops below the floor, but do not fail the gate — coverage is a
    # trend indicator here, not a merge blocker.
    cover_floor=70
    echo "== coverage (report-only floor: ${cover_floor}%)"
    go test ./... -coverprofile=.cover.out >/dev/null
    total=$(go tool cover -func=.cover.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    rm -f .cover.out
    echo "total statement coverage: ${total}%"
    if [ "$(printf '%s\n' "$total" "$cover_floor" | sort -g | head -1)" != "$cover_floor" ]; then
        echo "WARNING: total coverage ${total}% is below the ${cover_floor}% floor" >&2
    fi
fi

echo "ok: all checks passed"
