#!/bin/sh
# check.sh — the full verification gate: vet, build, tests, race tests.
#
# Usage:
#   scripts/check.sh          # everything, including the full -race run
#   QUICK=1 scripts/check.sh  # -short mode for both test passes (skips
#                             # soak/stress tests; suits pre-commit hooks)
set -eu
cd "$(dirname "$0")/.."

short=""
if [ "${QUICK:-0}" = "1" ]; then
    short="-short"
fi

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test $short ./..."
go test $short ./...

echo "== go test -race $short ./..."
go test -race $short ./...

echo "== chaos smoke (leak check)"
go run ./cmd/benchgrid -fig none -app chaos -smoke >/dev/null

echo "== trace smoke (causal-tracing invariants)"
go run ./cmd/tracegrid -smoke -check >/dev/null

echo "ok: all checks passed"
