package cogrid

// One benchmark per table and figure in the paper's evaluation, plus
// micro-benchmarks of the substrate. The "sim_*" metrics report virtual
// (simulated) time — the quantities the paper's figures plot — while the
// standard ns/op measures the real cost of running the simulation.

import (
	"testing"
	"time"

	"cogrid/internal/experiments"
	"cogrid/internal/rsl"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// BenchmarkFigure2GRAMSubmission regenerates Figure 2: GRAM submission
// latency across process counts, reporting the (flat) simulated latency.
func BenchmarkFigure2GRAMSubmission(b *testing.B) {
	var res experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure2([]int{16, 32, 64})
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Latency.Seconds(), "sim_s/"+itoa(row.Processes)+"proc")
	}
}

// BenchmarkFigure3GRAMBreakdown regenerates Figure 3: the per-phase
// breakdown of a single-process GRAM request.
func BenchmarkFigure3GRAMBreakdown(b *testing.B) {
	var res experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure3()
	}
	for _, phase := range []string{"initgroups", "authentication", "misc", "fork"} {
		b.ReportMetric(res.Phases[phase].Seconds(), "sim_s/"+phase)
	}
}

// BenchmarkFigure4DUROCSubjobs regenerates Figure 4: DUROC submission time
// versus subjob count at 64 processes, reporting the endpoints, the fitted
// pipeline step k, and the barrier-wait ratio.
func BenchmarkFigure4DUROCSubjobs(b *testing.B) {
	var res experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure4(64, []int{1, 5, 10, 15, 20, 25})
	}
	b.ReportMetric(res.Rows[0].Measured.Seconds(), "sim_s/1subjob")
	b.ReportMetric(res.Rows[len(res.Rows)-1].Measured.Seconds(), "sim_s/25subjobs")
	b.ReportMetric(res.K.Seconds(), "sim_s/k")
	b.ReportMetric(res.PipelineSaving*100, "pipeline_saving_%")
	b.ReportMetric(res.MeanWaitRatio, "barrier_wait_ratio")
}

// BenchmarkFigure4ProcessFlat regenerates the companion finding: DUROC
// time is insensitive to the process count at fixed subjobs.
func BenchmarkFigure4ProcessFlat(b *testing.B) {
	var rows []experiments.Figure4FlatRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure4Flat(4, []int{16, 64})
	}
	for _, row := range rows {
		b.ReportMetric(row.Measured.Seconds(), "sim_s/"+itoa(row.Processes)+"proc")
	}
}

// BenchmarkFigure5Timeline regenerates Figure 5: the phase timeline of a
// pipelined DUROC submission.
func BenchmarkFigure5Timeline(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Figure5(4, 16)
	}
	if len(out) == 0 {
		b.Fatal("empty timeline")
	}
}

// BenchmarkAppAtomicVsInteractive regenerates study A1: time to a running
// ensemble under GRAB-style atomic restarts versus DUROC substitution at
// 20% per-machine failure probability and 15-minute startups.
func BenchmarkAppAtomicVsInteractive(b *testing.B) {
	var res experiments.AtomicVsInteractiveResult
	for i := 0; i < b.N; i++ {
		res = experiments.AtomicVsInteractive(5, 15*time.Minute, []float64{0.2}, 3, 1)
	}
	row := res.Rows[0]
	b.ReportMetric(row.AtomicTime.Seconds(), "sim_s/atomic")
	b.ReportMetric(row.InteractiveTime.Seconds(), "sim_s/interactive")
	b.ReportMetric(row.AtomicSlowdown, "atomic_slowdown_x")
}

// BenchmarkAppBigRun regenerates study A2: the 1386-processor, 13-machine,
// 9-site start with failures configured around.
func BenchmarkAppBigRun(b *testing.B) {
	var res experiments.BigRunResult
	for i := 0; i < b.N; i++ {
		res = experiments.BigRun(5)
	}
	b.ReportMetric(res.StartTime.Seconds(), "sim_s/start")
	b.ReportMetric(float64(res.CommittedPE), "committed_pe")
}

// BenchmarkAblationOverProvision regenerates study S1: over-provisioning
// factor 2 with oracle forecasts versus exact requests.
func BenchmarkAblationOverProvision(b *testing.B) {
	var res experiments.OverProvisionResult
	for i := 0; i < b.N; i++ {
		res = experiments.OverProvisionSweep(2, 6, []float64{1, 2}, []float64{0}, 3, 21)
	}
	b.ReportMetric(res.Rows[0].MeanCommit.Seconds(), "sim_s/exact")
	b.ReportMetric(res.Rows[1].MeanCommit.Seconds(), "sim_s/overprovision")
}

// BenchmarkReservation regenerates study R1: co-reservation negotiation
// and simultaneous start.
func BenchmarkReservation(b *testing.B) {
	var res experiments.CoReservationResult
	for i := 0; i < b.N; i++ {
		res = experiments.CoReservationStudy(3)
	}
	b.ReportMetric(res.NegotiatedStart.Seconds(), "sim_s/start")
	b.ReportMetric(res.Spread.Seconds(), "sim_s/spread")
}

// BenchmarkLoadCrossover regenerates study R2: best-effort co-allocation
// versus co-reservation at 70% background utilization.
func BenchmarkLoadCrossover(b *testing.B) {
	var res experiments.LoadResult
	for i := 0; i < b.N; i++ {
		res = experiments.BestEffortVsReservation(3, []float64{0.7}, 3, 9)
	}
	b.ReportMetric(res.Rows[0].BestEffort.Seconds(), "sim_s/best_effort")
	b.ReportMetric(res.Rows[0].Reserved.Seconds(), "sim_s/reserved")
}

// BenchmarkStalenessSweep regenerates study S2: co-allocation time using
// fresh versus hour-old published load information.
func BenchmarkStalenessSweep(b *testing.B) {
	var res experiments.StalenessResult
	for i := 0; i < b.N; i++ {
		res = experiments.StalenessSweep(3, 10, []time.Duration{0, time.Hour}, 4, 17)
	}
	b.ReportMetric(res.Rows[0].MeanCommit.Seconds(), "sim_s/fresh")
	b.ReportMetric(res.Rows[1].MeanCommit.Seconds(), "sim_s/1h_stale")
}

// BenchmarkAblationSubmission compares the paper's sequential submission
// pipeline with parallel submission at 25 subjobs — the design-choice
// ablation DESIGN.md calls out.
func BenchmarkAblationSubmission(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.SubmissionAblation(64, []int{25})
	}
	b.ReportMetric(rows[0].Sequential.Seconds(), "sim_s/sequential")
	b.ReportMetric(rows[0].Parallel.Seconds(), "sim_s/parallel")
	b.ReportMetric(rows[0].Speedup, "speedup_x")
}

// --- substrate micro-benchmarks ---

// BenchmarkRSLParseFigure1 measures parsing the paper's Figure 1 request.
func BenchmarkRSLParseFigure1(b *testing.B) {
	src := `+(&(resourceManagerContact=RM1)(count=1)(executable=master)(subjobStartType=required))` +
		`(&(resourceManagerContact=RM2)(count=4)(executable=worker)(subjobStartType=interactive))` +
		`(&(resourceManagerContact=RM3)(count=4)(executable=worker)(subjobStartType=interactive))`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rsl.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelPingPong measures the virtual-time kernel's context
// switch: two processes rendezvous N times over an unbuffered channel.
func BenchmarkKernelPingPong(b *testing.B) {
	b.ReportAllocs()
	sim := vtime.New()
	ping := vtime.NewChan[int](sim, "ping", 0)
	pong := vtime.NewChan[int](sim, "pong", 0)
	n := b.N
	sim.GoDaemon("echo", func() {
		for {
			v, ok := ping.Recv()
			if !ok {
				return
			}
			pong.Send(v)
		}
	})
	sim.Go("driver", func() {
		for i := 0; i < n; i++ {
			ping.Send(i)
			pong.Recv()
		}
	})
	if err := sim.Wait(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTransportRoundTrip measures one message round trip through the
// simulated network, including delivery daemons and latency timers.
func BenchmarkTransportRoundTrip(b *testing.B) {
	b.ReportAllocs()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	a, s := net.AddHost("a"), net.AddHost("b")
	l, err := s.Listen("echo")
	if err != nil {
		b.Fatal(err)
	}
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			if conn.Send(msg) != nil {
				return
			}
		}
	})
	n := b.N
	sim.Go("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			panic(err)
		}
		defer conn.Close()
		for i := 0; i < n; i++ {
			if err := conn.Send([]byte("x")); err != nil {
				panic(err)
			}
			if _, err := conn.Recv(); err != nil {
				panic(err)
			}
		}
	})
	if err := sim.Wait(); err != nil {
		b.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
