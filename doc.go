// Package cogrid is a reproduction of "Resource Co-Allocation in
// Computational Grids" (Czajkowski, Foster, Kesselman; HPDC 1999): the
// GRAB and DUROC co-allocators, the GRAM resource management substrate
// they run on, and the paper's complete evaluation, all on a
// deterministic discrete-event simulated grid.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The benchmarks in this package regenerate every figure; cmd/benchgrid
// prints them as text.
package cogrid
